"""Tests for dynamic batching and the multi-model frontend scheduler."""

import pytest

from repro.server.batching import DynamicBatcher, SingleRequest
from repro.server.request import RequestQueue
from repro.server.scheduler import FrontendScheduler
from repro.sim.engine import Simulator


def make_batcher(max_batch_size=4, max_delay=1e-3):
    sim = Simulator()
    queue = RequestQueue(sim)
    batcher = DynamicBatcher(sim, queue, "m",
                             max_batch_size=max_batch_size,
                             max_delay=max_delay)
    return sim, queue, batcher


def submit(sim, batcher, at, n=1):
    for _ in range(n):
        sim.schedule(at, lambda: batcher.submit(
            SingleRequest("m", arrival_time=sim.now)))


def test_full_batch_flushes_immediately():
    sim, queue, batcher = make_batcher(max_batch_size=4)
    submit(sim, batcher, 0.0, n=4)
    sim.run(until=1e-6)
    assert len(queue) == 1
    batch = queue.pop()
    assert batch.batch_size == 4
    assert batch.arrival_time == 0.0


def test_timeout_flushes_partial_batch():
    sim, queue, batcher = make_batcher(max_batch_size=8, max_delay=1e-3)
    submit(sim, batcher, 0.0, n=3)
    sim.run()
    assert batcher.batches_emitted == 1
    batch = queue.pop()
    assert batch.batch_size == 3
    # Flush happened at the max_delay deadline.
    assert sim.now == pytest.approx(1e-3)


def test_oversized_burst_splits_into_batches():
    sim, queue, batcher = make_batcher(max_batch_size=4, max_delay=1e-3)
    submit(sim, batcher, 0.0, n=10)
    sim.run()
    assert batcher.batches_emitted == 3
    sizes = [queue.pop().batch_size for _ in range(3)]
    assert sizes == [4, 4, 2]


def test_single_latency_includes_batching_delay():
    sim, queue, batcher = make_batcher(max_batch_size=8, max_delay=2e-3)
    request = SingleRequest("m", arrival_time=0.0)
    sim.schedule(0.0, lambda: batcher.submit(request))
    sim.run()
    batch = queue.pop()
    batch.start_time = sim.now
    batch.completion_time = 5e-3
    assert request.latency == pytest.approx(5e-3)


def test_wrong_model_rejected():
    sim, queue, batcher = make_batcher()
    with pytest.raises(ValueError):
        batcher.submit(SingleRequest("other", arrival_time=0.0))


def test_batcher_validation():
    sim = Simulator()
    queue = RequestQueue(sim)
    with pytest.raises(ValueError):
        DynamicBatcher(sim, queue, "m", max_batch_size=0)
    with pytest.raises(ValueError):
        DynamicBatcher(sim, queue, "m", max_delay=-1.0)


# -- scheduler ---------------------------------------------------------------

def test_scheduler_routes_by_model():
    sim = Simulator()
    scheduler = FrontendScheduler(sim)
    a = scheduler.register_model("albert", max_batch_size=2)
    b = scheduler.register_model("vgg19", max_batch_size=2)
    assert scheduler.submit(SingleRequest("albert", 0.0))
    assert scheduler.submit(SingleRequest("vgg19", 0.0))
    assert scheduler.submit(SingleRequest("albert", 0.0))
    sim.run(until=1e-6)
    assert a.requests_routed == 2
    assert b.requests_routed == 1
    assert len(a.queue) == 1  # albert's pair flushed as a full batch


def test_scheduler_rejects_unknown_model():
    sim = Simulator()
    scheduler = FrontendScheduler(sim)
    scheduler.register_model("albert")
    assert not scheduler.submit(SingleRequest("gpt", 0.0))
    assert scheduler.rejected == 1


def test_scheduler_duplicate_registration():
    sim = Simulator()
    scheduler = FrontendScheduler(sim)
    scheduler.register_model("albert")
    with pytest.raises(ValueError):
        scheduler.register_model("albert")
    assert scheduler.model_names == ("albert",)
