"""Property-style invariant tests (seeded stdlib ``random``, no deps).

Randomised cases over Algorithm 1's resource-mask generation and the
CU-mask word encoding.  These invariants are what make the parallel
sweep orchestrator safe: allocation is a pure function of (request,
counters), so identical cells produce identical masks in any process.

* masks never exceed the overlap limit (the only exception is the
  documented fair-share floor, which grants exactly ``floor`` CUs);
* Conserved never opens a new SE while a used SE has free CUs;
* the popcount of every mask equals the requested CU count when overlap
  is unbounded;
* ``CUMask`` round-trips through its fixed-width word encoding.
"""

import math
import random

import pytest

from repro.core.allocation import (
    DistributionPolicy,
    ResourceMaskGenerator,
    se_distribution,
)
from repro.gpu.counters import CUKernelCounters
from repro.gpu.cu_mask import CUMask
from repro.gpu.topology import GpuTopology

TOPO = GpuTopology.mi50()
CASES = 200


def _random_counters(rng: random.Random,
                     max_kernels: int = 6) -> CUKernelCounters:
    """Counters after a random number of random-mask kernel dispatches."""
    counters = CUKernelCounters(TOPO)
    for _ in range(rng.randrange(max_kernels + 1)):
        size = rng.randint(1, TOPO.total_cus)
        cus = rng.sample(range(TOPO.total_cus), size)
        counters.assign(CUMask.from_cus(TOPO, cus))
    return counters


def _fair_share_floor(counters: CUKernelCounters) -> int:
    """The generator's fair-share floor for the current device load."""
    load = math.ceil(counters.total_assigned() / TOPO.total_cus)
    return max(1, TOPO.total_cus // (load + 1))


def test_mask_popcount_equals_request_when_overlap_unbounded():
    rng = random.Random(0xA11C)
    gen = ResourceMaskGenerator(TOPO, overlap_limit=None)
    for _ in range(CASES):
        counters = _random_counters(rng)
        request = rng.randint(1, TOPO.total_cus)
        mask = gen.generate(request, counters)
        assert mask.count() == request


def test_masks_respect_the_overlap_limit():
    """Literal Algorithm 1 (reshape=False): the number of occupied CUs
    in a generated mask never exceeds the overlap limit, except when the
    fair-share floor had to top a starved kernel up — and then the grant
    is exactly the floor."""
    rng = random.Random(0xB0B)
    for _ in range(CASES):
        limit = rng.randint(0, 12)
        gen = ResourceMaskGenerator(TOPO, overlap_limit=limit,
                                    reshape=False)
        counters = _random_counters(rng)
        floor = _fair_share_floor(counters)
        request = rng.randint(1, TOPO.total_cus)
        mask = gen.generate(request, counters)
        overlapped = sum(1 for cu in mask.cus() if counters.count(cu) > 0)
        assert overlapped <= limit or mask.count() <= floor, (
            f"limit={limit} floor={floor} request={request} "
            f"overlapped={overlapped} granted={mask.count()}"
        )


def test_isolated_mode_never_overlaps_while_clean_ses_suffice():
    """KRISP-I (limit 0) when the request fits inside the untouched SEs:
    the mask must be disjoint from every occupied CU.  (When free CUs are
    fragmented across loaded SEs, the documented fair-share floor may
    overlap — covered by ``test_masks_respect_the_overlap_limit``.)"""
    rng = random.Random(0xC0FFEE)
    gen = ResourceMaskGenerator(TOPO, overlap_limit=0, reshape=False)
    clean_cus = (TOPO.num_se - 1) * TOPO.cus_per_se
    for _ in range(CASES):
        counters = CUKernelCounters(TOPO)
        # Confine the existing kernels to the last SE, so the least-loaded
        # SEs chosen by Algorithm 1 are wholly free.
        last_se = list(TOPO.cus_in_se(TOPO.num_se - 1))
        for _ in range(rng.randrange(3)):
            busy = rng.sample(last_se, rng.randint(1, len(last_se)))
            counters.assign(CUMask.from_cus(TOPO, busy))
        mask = gen.generate(rng.randint(1, clean_cus), counters)
        assert not mask.is_empty()
        assert all(counters.count(cu) == 0 for cu in mask.cus())


def test_generate_never_returns_an_empty_mask():
    rng = random.Random(0xDEAD)
    for limit in (0, 1, None):
        gen = ResourceMaskGenerator(TOPO, overlap_limit=limit)
        for _ in range(50):
            counters = _random_counters(rng, max_kernels=12)
            mask = gen.generate(rng.randint(1, TOPO.total_cus), counters)
            assert not mask.is_empty()


def test_conserved_opens_the_fewest_possible_ses():
    """Conserved never opens a new SE while a used SE has free CUs: the
    number of SEs holding CUs is exactly ceil(n / cus_per_se), and the
    split across them is balanced to within one CU."""
    rng = random.Random(0x5E)
    for _ in range(CASES):
        n = rng.randint(1, TOPO.total_cus)
        counts = se_distribution(n, TOPO, DistributionPolicy.CONSERVED)
        used = [c for c in counts if c > 0]
        assert sum(counts) == n
        assert len(used) == math.ceil(n / TOPO.cus_per_se)
        assert max(used) - min(used) <= 1
        assert max(used) <= TOPO.cus_per_se


def test_conserved_generated_masks_use_minimal_ses_on_idle_device():
    rng = random.Random(0x1D1E)
    gen = ResourceMaskGenerator(TOPO, policy=DistributionPolicy.CONSERVED)
    for _ in range(CASES):
        n = rng.randint(1, TOPO.total_cus)
        mask = gen.generate(n, CUKernelCounters(TOPO))
        assert mask.count() == n
        per_se = [c for c in mask.per_se_counts() if c > 0]
        assert len(per_se) == math.ceil(n / TOPO.cus_per_se)
        assert max(per_se) - min(per_se) <= 1


def test_cu_mask_word_encoding_round_trips():
    rng = random.Random(0xF00D)
    topologies = [TOPO] + [
        GpuTopology(num_se=rng.randint(1, 8), cus_per_se=rng.randint(1, 20))
        for _ in range(10)
    ]
    for topo in topologies:
        for _ in range(30):
            bits = rng.getrandbits(topo.total_cus)
            mask = CUMask(topo, bits)
            for word_bits in (16, 32, 64):
                words = mask.to_words(word_bits)
                assert len(words) == math.ceil(topo.total_cus / word_bits)
                assert all(0 <= w < (1 << word_bits) for w in words)
                assert CUMask.from_words(topo, words, word_bits) == mask


def test_cu_mask_word_encoding_rejects_bad_words():
    with pytest.raises(ValueError, match="out of 32-bit range"):
        CUMask.from_words(TOPO, [1 << 32])
    with pytest.raises(ValueError, match="out of 32-bit range"):
        CUMask.from_words(TOPO, [-1])
    # Bits beyond the device are rejected by mask validation, not dropped.
    with pytest.raises(ValueError, match="outside"):
        CUMask.from_words(TOPO, [0, 0xFFFFFFFF])
    with pytest.raises(ValueError, match="word_bits"):
        CUMask.all_cus(TOPO).to_words(0)
