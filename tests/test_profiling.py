"""Tests for the kernel and model profilers."""

import pytest

from repro.core.perfdb import PerfDatabase
from repro.gpu.cu_mask import CUMask
from repro.gpu.exec_model import ExecutionModelConfig, isolated_latency
from repro.gpu.topology import GpuTopology
from repro.models.kernels import compute_kernel, full_gpu_kernel, streaming_kernel
from repro.models.zoo import get_model
from repro.profiling.kernel_profiler import KernelProfiler, build_database
from repro.profiling.model_profiler import (
    kernel_mincu_trace,
    profile_model,
    run_inference_once,
)

TOPO = GpuTopology.mi50()


def test_profiler_analytic_matches_simulator():
    """The analytic profiling latency equals a real simulated run."""
    profiler = KernelProfiler()
    for desc in (compute_kernel("c", 26, 1e-4),
                 streaming_kernel("s", 8, 5e-5),
                 full_gpu_kernel("f", 1e-3, waves=2)):
        for n in (10, 26, 45, 60):
            mask = profiler.mask_for(n)
            analytic = profiler.latency_at(desc, n)
            # One extra packet-processing hop exists in the full stack;
            # account for it explicitly.
            simulated = run_inference_once([desc], mask)
            assert simulated == pytest.approx(analytic, rel=0.05)


def test_min_cus_monotone_tolerance():
    """A looser tolerance never increases the profiled minCU."""
    desc = compute_kernel("c", 26, 1e-4)
    tight = KernelProfiler(tolerance=0.01).min_cus(desc)
    loose = KernelProfiler(tolerance=0.50).min_cus(desc)
    assert loose <= tight


def test_latency_curve_is_flat_above_mincu():
    profiler = KernelProfiler()
    desc = compute_kernel("c", 20, 1e-4)
    curve = profiler.latency_curve(desc, cu_counts=range(20, 61, 5))
    values = list(curve.values())
    assert max(values) <= min(values) * 1.05


def test_profile_returns_full_record():
    profiler = KernelProfiler()
    profile = profiler.profile(compute_kernel("c", 12, 1e-4),
                               with_curve=True)
    assert profile.min_cus == 12
    assert profile.total_cus == 60
    assert profile.restriction_tolerance == pytest.approx(0.8)
    assert len(profile.latencies) == 60


def test_build_database_dedups_by_key():
    kernels = [compute_kernel("a", 12, 1e-4)] * 5 + [compute_kernel("b", 26, 1e-4)]
    db = build_database(kernels)
    assert len(db) == 2
    assert db.lookup(compute_kernel("a", 12, 1e-4)) == 12


def test_build_database_covers_model_trace():
    db = build_database(get_model("squeezenet").trace(32))
    for desc in get_model("squeezenet").trace(32):
        assert db.lookup(desc) is not None


def test_profile_model_right_size_and_curve():
    sens = profile_model(get_model("albert"), cu_counts=range(4, 61, 4))
    assert sens.right_size == 12
    # Latency should be non-increasing (within tolerance) as CUs grow.
    assert sens.latencies[0] >= sens.latencies[-1]
    assert sens.latency_at(60) == sens.latencies[-1]
    assert len(sens.throughputs()) == len(sens.cu_counts)


def test_profile_model_rejects_empty_sweep():
    with pytest.raises(ValueError):
        profile_model(get_model("albert"), cu_counts=[])


def test_kernel_mincu_trace_shape():
    model = get_model("albert")
    trace = kernel_mincu_trace(model)
    assert len(trace) == model.kernel_count
    # The Fig. 4 phase behaviour: mostly small requirements with periodic
    # full-device spikes.
    assert max(trace) == 60
    small = sum(1 for m in trace if m <= 15)
    assert small / len(trace) > 0.7


def test_kernel_mincu_trace_resnext_mostly_large():
    trace = kernel_mincu_trace(get_model("resnext101"))
    # resnext has many high-minCU kernels (its grouped convolutions) but
    # also many small ones within the pass (the paper's opportunity).
    assert sum(1 for m in trace if m >= 50) >= 33
    assert sum(1 for m in trace if m <= 15) > 100
