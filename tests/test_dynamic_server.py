"""Tests for the dynamic-serving baselines (Fig. 2 dynamics)."""

import pytest

from repro.baselines.dynamic_server import (
    KrispDynamicServer,
    ModelWiseDynamicServer,
)
from repro.baselines.process_scoped import ReloadCostModel
from repro.gpu.device import GpuDevice
from repro.sim.engine import Simulator

MODEL = "squeezenet"
COSTS = ReloadCostModel(partition_config=1.0, backend_start=2.0,
                        model_load=5.0)


def test_krisp_server_first_response_is_immediate():
    sim = Simulator()
    server = KrispDynamicServer(sim, GpuDevice(sim))
    served = server.admit(MODEL)
    sim.run(until=1.0)
    server.stop_all()
    # First inference completes within a couple of pass latencies (~8 ms).
    assert served.time_to_first_inference < 0.05
    assert served.completed_passes > 50


def test_model_wise_server_waits_for_epoch_and_reload():
    sim = Simulator()
    server = ModelWiseDynamicServer(sim, GpuDevice(sim), epoch=20.0,
                                    reload_costs=COSTS)
    sim.run(until=5.0)   # admit mid-epoch
    served = server.admit(MODEL)
    sim.run(until=40.0)
    server.stop_all()
    # Admission at t=5 is honoured at the t=20 epoch boundary, then the
    # instance boots for total_reload = 8 s: first response ~ t=28.
    assert served.time_to_first_inference == pytest.approx(
        15.0 + COSTS.total_reload, rel=0.05)
    assert server.reconfigurations == 1


def test_model_wise_existing_model_keeps_serving_during_reload():
    sim = Simulator()
    server = ModelWiseDynamicServer(sim, GpuDevice(sim), epoch=10.0,
                                    reload_costs=COSTS)
    first = server.admit(MODEL)
    sim.run(until=25.0)  # first admitted at epoch t=10 (+8s boot)
    passes_before = first.completed_passes
    assert passes_before > 0
    second = server.admit("shufflenet")
    sim.run(until=34.0)  # next epoch t=30; shadow boots until t=38
    # During the shadow boot, the first model continues on its old mask.
    assert first.completed_passes > passes_before
    sim.run(until=45.0)
    server.stop_all()
    assert second.first_response_at is not None
    assert second.time_to_first_inference > COSTS.total_reload


def test_krisp_server_admits_second_model_in_milliseconds():
    sim = Simulator()
    server = KrispDynamicServer(sim, GpuDevice(sim))
    server.admit(MODEL)
    sim.run(until=0.5)
    second = server.admit("shufflenet")
    sim.run(until=1.0)
    server.stop_all()
    assert second.time_to_first_inference < 0.05


def test_partitions_fit_device_after_repartition():
    sim = Simulator()
    device = GpuDevice(sim)
    server = ModelWiseDynamicServer(sim, device, epoch=5.0,
                                    reload_costs=COSTS)
    a = server.admit(MODEL)
    b = server.admit("shufflenet")
    # Epoch at t=5, then two serial shadow boots (2 x 8 s) before the swap.
    sim.run(until=25.0)
    server.stop_all()
    assert a.partition is not None and b.partition is not None
    assert a.partition.intersect(b.partition).is_empty()
    assert a.partition.count() + b.partition.count() <= 60


def test_epoch_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        ModelWiseDynamicServer(sim, GpuDevice(sim), epoch=0.0)
