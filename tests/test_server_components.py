"""Unit tests for server components: queue, metrics, frontend, worker."""

import numpy as np
import pytest

from repro.gpu.device import GpuDevice
from repro.gpu.exec_model import ExecutionModelConfig
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.topology import GpuTopology
from repro.runtime.hsa import HsaRuntime
from repro.runtime.stream import Stream
from repro.server.frontend import ClosedLoopClient, PoissonClient
from repro.server.metrics import BoxplotStats, LatencyStats, geomean, percentile
from repro.server.request import InferenceRequest, RequestQueue
from repro.server.worker import HostCostModel, Worker
from repro.sim.engine import Simulator

TOPO = GpuTopology.mi50()


# -- metrics ----------------------------------------------------------------

def test_percentile_nearest_rank():
    samples = list(range(1, 101))
    assert percentile(samples, 50) == 50
    assert percentile(samples, 95) == 95
    assert percentile(samples, 100) == 100
    assert percentile([7.0], 95) == 7.0


def test_percentile_validation():
    with pytest.raises(ValueError, match="empty sample set"):
        percentile([], 95)
    with pytest.raises(ValueError, match=r"out of \(0, 100\]"):
        percentile([1.0], 0)
    with pytest.raises(ValueError, match=r"out of \(0, 100\]"):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([1.0], -5)
    # A bad pct fails fast even when the samples are empty too.
    with pytest.raises(ValueError, match=r"out of \(0, 100\]"):
        percentile([], 0)


def test_percentile_nearest_rank_edges():
    samples = [10.0, 20.0, 30.0, 40.0]
    # pct just above 0 clamps to the first rank, never rank 0.
    assert percentile(samples, 1e-9) == 10.0
    assert percentile(samples, 25) == 10.0
    # Nearest-rank rounds up: 26% of 4 samples -> rank 2.
    assert percentile(samples, 26) == 20.0
    assert percentile(samples, 100) == 40.0
    # Single sample answers every pct.
    assert percentile([7.0], 1e-9) == 7.0
    assert percentile([7.0], 100) == 7.0
    # Unsorted input is sorted, not trusted.
    assert percentile([40.0, 10.0, 30.0, 20.0], 50) == 20.0


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


def test_latency_stats():
    stats = LatencyStats.from_samples([1.0, 2.0, 3.0, 4.0])
    assert stats.count == 4
    assert stats.mean == 2.5
    assert stats.p50 == 2.0
    assert stats.maximum == 4.0
    with pytest.raises(ValueError):
        LatencyStats.from_samples([])


def test_latency_stats_p999():
    samples = [float(i) for i in range(10_000)]
    stats = LatencyStats.from_samples(samples)
    assert stats.p99 == 9899.0
    assert stats.p95 < stats.p99 <= stats.p999 <= stats.maximum
    # from_samples and the standalone helper agree on the same rank.
    assert stats.p999 == percentile(samples, 99.9)
    # Small sample sets degrade to the max, never crash.
    assert LatencyStats.from_samples([1.0, 2.0]).p999 == 2.0


def test_boxplot_stats():
    stats = BoxplotStats.from_samples(list(map(float, range(1, 101))))
    assert stats.minimum == 1.0
    assert stats.q1 == 25.0
    assert stats.median == 50.0
    assert stats.q3 == 75.0
    assert stats.maximum == 100.0


# -- request queue ------------------------------------------------------------

def test_queue_fifo_order():
    sim = Simulator()
    queue = RequestQueue(sim)
    for i in range(3):
        queue.put(InferenceRequest("m", 32, arrival_time=float(i)))
    assert queue.pop().arrival_time == 0.0
    assert queue.pop().arrival_time == 1.0
    assert len(queue) == 1


def test_queue_blocking_get():
    sim = Simulator()
    queue = RequestQueue(sim)
    woke = []
    queue.get_signal().on_fire(lambda v: woke.append(sim.now))
    sim.schedule(5.0, lambda: queue.put(
        InferenceRequest("m", 32, arrival_time=sim.now)))
    sim.run()
    assert woke == [5.0]


def test_queue_pop_empty_raises():
    queue = RequestQueue(Simulator())
    with pytest.raises(IndexError):
        queue.pop()


def test_request_latency_requires_completion():
    request = InferenceRequest("m", 32, arrival_time=0.0)
    with pytest.raises(ValueError):
        request.latency
    with pytest.raises(ValueError):
        request.service_latency


# -- host cost model -----------------------------------------------------------

def test_host_cost_draws_are_positive_and_near_mean():
    rng = np.random.default_rng(0)
    costs = HostCostModel(pre_mean=1e-3)
    draws = [costs.draw(costs.pre_mean, rng) for _ in range(500)]
    assert all(d > 0 for d in draws)
    assert np.mean(draws) == pytest.approx(1e-3, rel=0.2)


def test_host_cost_zero_mean():
    rng = np.random.default_rng(0)
    assert HostCostModel().draw(0.0, rng) == 0.0


# -- worker + closed loop -------------------------------------------------------

def make_worker_stack(segments, stop_time=1.0):
    sim = Simulator()
    device = GpuDevice(sim, TOPO,
                       exec_config=ExecutionModelConfig(launch_overhead=0.0))
    runtime = HsaRuntime(sim, device)
    stream = Stream(runtime, name="w")
    queue = RequestQueue(sim)
    client = ClosedLoopClient(sim, queue, "m", 32, concurrency=1,
                              stop_time=stop_time)
    worker = Worker(
        sim, "w0", stream, segments, queue,
        rng=np.random.default_rng(1),
        host_costs=HostCostModel(pre_mean=1e-4, post_mean=1e-4),
        stop_time=stop_time,
        on_complete=client.on_request_complete,
    )
    return sim, device, worker


def simple_segment(gap=0.0):
    desc = KernelDescriptor(name="k", workgroups=60, wg_duration=1e-3,
                            occupancy=1, mem_intensity=0.0)
    return [([desc], gap)]


def test_worker_processes_closed_loop_requests():
    sim, device, worker = make_worker_stack(simple_segment(), stop_time=0.1)
    sim.run()
    # Each request ~1.2ms -> roughly 80 requests in 100ms.
    assert 50 <= worker.stats.requests_processed <= 100
    assert device.kernels_completed == worker.stats.requests_processed


def test_worker_respects_host_gaps():
    sim, device, fast = make_worker_stack(simple_segment(gap=0.0),
                                          stop_time=0.1)
    sim.run()
    sim2, device2, slow = make_worker_stack(simple_segment(gap=2e-3),
                                            stop_time=0.1)
    sim2.run()
    assert slow.stats.requests_processed < fast.stats.requests_processed


def test_worker_latency_accounting():
    sim, device, worker = make_worker_stack(simple_segment(), stop_time=0.05)
    sim.run()
    latencies = worker.stats.latencies_in(0.0, 0.05)
    assert latencies
    assert all(1e-3 < lat < 3e-3 for lat in latencies)


def test_poisson_client_rate():
    sim = Simulator()
    queue = RequestQueue(sim)
    client = PoissonClient(sim, queue, "m", 32, rate=1000.0,
                           rng=np.random.default_rng(2), stop_time=1.0)
    sim.run()
    assert client.issued == pytest.approx(1000, rel=0.2)


def test_closed_loop_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        ClosedLoopClient(sim, RequestQueue(sim), "m", 32, concurrency=0)
    with pytest.raises(ValueError):
        PoissonClient(sim, RequestQueue(sim), "m", 32, rate=0.0,
                      rng=np.random.default_rng(0), stop_time=1.0)
