"""Baseline discovery and comparison edge cases (repro.bench.runner).

The bug class: ``default_baseline_path`` used to pick the "newest"
``BENCH_*.json`` by directory order/mtime, which is nondeterministic in
fresh clones and CI checkouts — and ``bench --compare`` crashed with a
KeyError against a legacy schema-1 baseline whose rows predate the
``batches``/``queue`` keys.  Discovery is now ranked by the embedded
``rev``'s position in the repo's first-parent history (content, never
mtime), and every comparison degrades to the keys both sides share.
"""

import json
import os

from repro.bench.runner import (
    baseline_deltas,
    check_report,
    default_baseline_path,
)


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return path


def _row(scenario="colo4", mode="auto", wall=1.0, eps=1000.0, **extra):
    return {"scenario": scenario, "mode": mode, "wall_s": wall,
            "events_per_s": eps, **extra}


def test_newer_schema_beats_older_mtime(tmp_path):
    # No .git in tmp_path: ranking must fall back to (schema, name),
    # never to mtime — the schema-1 file gets the *newer* mtime on
    # purpose (the failing-before arrangement).
    old = _write(tmp_path / "BENCH_aaaaaaa.json",
                 {"schema": 1, "rev": "aaaaaaa", "rows": [_row()]})
    new = _write(tmp_path / "BENCH_bbbbbbb.json",
                 {"schema": 2, "rev": "bbbbbbb", "rows": [_row()]})
    os.utime(new, (1_000_000, 1_000_000))
    os.utime(old, (2_000_000, 2_000_000))
    assert default_baseline_path(tmp_path) == new


def test_history_position_beats_schema_and_name(tmp_path, monkeypatch):
    # A rev inside the (stubbed) first-parent history outranks any rev
    # outside it, regardless of schema or filename order.
    import repro.bench.runner as runner

    monkeypatch.setattr(runner, "_history_positions",
                        lambda root: {"0123456789ab": 0, "fedcba987654": 1})
    older = _write(tmp_path / "BENCH_0123456.json",
                   {"schema": 2, "rev": "0123456", "rows": []})
    newest = _write(tmp_path / "BENCH_fedcba9.json",
                    {"schema": 1, "rev": "fedcba9", "rows": []})
    _write(tmp_path / "BENCH_zzzzzzz.json",
           {"schema": 2, "rev": "zzzzzzz", "rows": []})
    assert default_baseline_path(tmp_path) == newest
    newest.unlink()
    assert default_baseline_path(tmp_path) == older


def test_repo_root_baseline_is_the_committed_schema2_file():
    # The real repo root holds a schema-1 file from a rev outside the
    # first-parent history and a schema-2 file from a committed rev; the
    # committed one must always win (this was mtime-dependent before).
    path = default_baseline_path()
    assert path is not None
    assert path.name == "BENCH_7fecf69.json"


def test_corrupt_baselines_rank_last_without_crashing(tmp_path):
    good = _write(tmp_path / "BENCH_aaaaaaa.json",
                  {"schema": 1, "rev": "aaaaaaa", "rows": []})
    (tmp_path / "BENCH_zzzzzzz.json").write_text("{not json")
    assert default_baseline_path(tmp_path) == good


def test_no_baselines_returns_none(tmp_path):
    assert default_baseline_path(tmp_path) is None


def test_deltas_tolerate_legacy_schema1_rows():
    report = {"schema": 2, "rows": [
        _row(eps=2000.0, batches=10, queue="auto"),
        _row(scenario="dense", eps=500.0, batches=5, queue="auto"),
    ]}
    # Schema-1 rows: no batches/queue keys, plus outright junk rows.
    baseline = {"schema": 1, "rows": [
        _row(eps=1000.0),
        {"scenario": "dense", "mode": "auto"},  # no events_per_s
        "junk",
        {"events_per_s": 100.0},  # no scenario/mode
    ]}
    deltas = baseline_deltas(report, baseline)
    assert deltas == {"colo4/auto": 2.0}


def test_deltas_tolerate_empty_documents():
    assert baseline_deltas({}, {}) == {}
    assert baseline_deltas({"rows": [_row()]}, {}) == {}


def test_check_report_schema_mismatch_fails_early():
    failures = check_report({"schema": 2, "rows": [_row()]},
                            {"schema": 1, "rows": [_row()]})
    assert len(failures) == 1
    assert "schema mismatch" in failures[0]


def test_check_report_skips_rows_missing_wall():
    report = {"schema": 2, "rows": [_row(wall=10.0)]}
    baseline = {"schema": 2, "rows": [
        {"scenario": "colo4", "mode": "auto"},  # no wall_s: skipped
    ]}
    assert check_report(report, baseline) == []


def test_check_report_still_catches_regressions():
    report = {"schema": 2, "rows": [_row(wall=2.0)]}
    baseline = {"schema": 2, "rows": [_row(wall=1.0)]}
    failures = check_report(report, baseline, max_regression=0.3)
    assert len(failures) == 1
    assert "colo4/auto" in failures[0]
