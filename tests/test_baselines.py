"""Tests for the process-scoped baselines and resize-path comparison."""

import pytest

from repro.baselines.process_scoped import (
    ProcessScopedInstance,
    ReloadCostModel,
    ShadowInstanceServer,
)
from repro.baselines.resize_paths import RESIZE_MECHANISMS, resize_latency
from repro.sim.engine import Simulator


def test_instance_boot_takes_full_reload():
    sim = Simulator()
    costs = ReloadCostModel()
    instance = ProcessScopedInstance(sim, costs)
    ready = []
    instance.ready.on_fire(lambda v: ready.append(sim.now))
    sim.run()
    assert ready == [pytest.approx(costs.total_reload)]


def test_cold_resize_incurs_downtime():
    sim = Simulator()
    costs = ReloadCostModel()
    instance = ProcessScopedInstance(sim, costs)
    sim.run()
    instance.resize(30)
    sim.run()
    assert instance.partition_size == 30
    assert instance.reloads == 1
    assert instance.downtime_total == pytest.approx(costs.total_reload)


def test_shadow_server_masks_reload_downtime():
    sim = Simulator()
    costs = ReloadCostModel()
    server = ShadowInstanceServer(sim, costs, min_resize_period=0.0)
    sim.run()  # boot the active instance
    done = server.resize(30)
    assert done is not None
    sim.run()
    assert server.partition_size == 30
    assert server.resizes_completed == 1
    # Downtime is only the hot-swap, not the reload.
    assert server.downtime_total == pytest.approx(costs.swap_downtime)


def test_shadow_server_epoch_limit():
    sim = Simulator()
    server = ShadowInstanceServer(sim, min_resize_period=20.0)
    sim.run()
    assert server.resize(30) is not None
    sim.run()
    # A second resize right away is rejected (the Gpulet ~20s epoch).
    assert server.resize(45) is None
    assert server.resizes_rejected == 1


def test_shadow_server_rejects_concurrent_resize():
    sim = Simulator()
    server = ShadowInstanceServer(sim, min_resize_period=0.0)
    sim.run()
    assert server.resize(30) is not None
    assert server.resize(45) is None  # still reconfiguring


def test_resize_latency_ordering():
    """Table I: process-scoped >> stream-scoped >> kernel-scoped."""
    process = resize_latency("mps")
    stream = resize_latency("cu-masking")
    kernel = resize_latency("kernel-scoped")
    assert process > 1.0                 # seconds (reload)
    assert 1e-6 < stream < 1e-3          # IOCTL path
    assert kernel <= 2e-6                # firmware mask generation
    assert process > 1000 * stream > 1000 * kernel / 10


def test_resize_latency_mig_matches_mps_path():
    assert resize_latency("mig") == resize_latency("mps")


def test_resize_latency_unknown():
    with pytest.raises(KeyError):
        resize_latency("tpu")


def test_mechanism_table_rows():
    names = {m.name for m in RESIZE_MECHANISMS}
    assert names == {"mps", "mig", "cu-masking", "kernel-scoped"}
    kernel_scoped = next(m for m in RESIZE_MECHANISMS
                         if m.name == "kernel-scoped")
    assert kernel_scoped.scope == "kernel"
    assert kernel_scoped.programmer_transparent
