"""Tests for the krisp-repro command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_profile_command(capsys):
    assert main(["profile", "squeezenet"]) == 0
    out = capsys.readouterr().out
    assert "right-size" in out
    assert "kernels/pass" in out


def test_colocate_command(capsys):
    assert main(["colocate", "squeezenet", "-n", "2", "-p", "krisp-i"]) == 0
    out = capsys.readouterr().out
    assert "normalized system throughput" in out
    assert "meets SLO" in out


def test_colocate_mixed_models(capsys):
    assert main(["colocate", "squeezenet", "shufflenet"]) == 0
    out = capsys.readouterr().out
    assert "squeezenet" in out and "shufflenet" in out


def test_rate_command_exit_codes(capsys):
    ok = main(["rate", "squeezenet", "--rps", "500", "--duration", "0.5"])
    assert ok == 0
    saturated = main(["rate", "squeezenet", "--rps", "50000",
                      "--duration", "0.5"])
    assert saturated == 1


def test_trace_command(tmp_path, capsys):
    import json

    out = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.prom"
    assert main(["trace", "squeezenet", "-n", "2", "--scale", "0.1",
                 "--out", str(out), "--metrics-out", str(metrics)]) == 0
    printed = capsys.readouterr().out
    assert "trace events" in printed
    assert "mask decisions" in printed
    assert "peak CU occupancy" in printed

    trace = json.loads(out.read_text())
    events = trace["traceEvents"]
    assert isinstance(events, list) and events
    assert all("ph" in e and "pid" in e for e in events)
    phases = {e["ph"] for e in events}
    # Spans, metadata, instants, counters, and flow arrows all present.
    assert {"X", "M", "i", "C", "s", "f"} <= phases
    procs = {e["args"]["name"] for e in events
             if e.get("name") == "process_name"}
    assert {"server", "gpu", "counters"} <= procs

    prom = metrics.read_text()
    assert "# TYPE krisp_cu_occupancy gauge" in prom
    assert "krisp_samples_total" in prom


def test_chaos_command(tmp_path, monkeypatch, capsys):
    import json

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    rows = tmp_path / "chaos.json"
    trace = tmp_path / "chaos-trace.json"
    assert main(["chaos", "squeezenet", "-n", "2", "-p", "krisp-i",
                 "-s", "crash", "--scale", "0.25",
                 "--json-out", str(rows), "--trace-out", str(trace)]) == 0
    printed = capsys.readouterr().out
    assert "scenario" in printed and "goodput" in printed
    assert "guard:" in printed

    payload = json.loads(rows.read_text())
    assert payload[0]["scenario"] == "crash"
    assert payload[0]["crashes"] == 1
    assert payload[0]["baseline_goodput_rps"] > 0

    events = json.loads(trace.read_text())["traceEvents"]
    procs = {e["args"]["name"] for e in events
             if e.get("name") == "process_name"}
    assert "faults" in procs


def test_unknown_model_rejected():
    with pytest.raises(SystemExit):
        main(["profile", "gpt4"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_bench_command(tmp_path, capsys):
    import json

    out = tmp_path / "bench.json"
    assert main(["bench", "colo4", "--compare", "--json-out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "speedup" in printed and "hashes identical" in printed

    report = json.loads(out.read_text())
    assert report["schema"] == 2
    assert {row["mode"] for row in report["rows"]} == {"incremental", "full"}
    for row in report["rows"]:
        assert row["scenario"] == "colo4"
        assert row["queue"] == "auto"
        assert row["wall_s"] > 0
        assert row["events"] > 0
        assert 0 < row["batches"] <= row["events"]
        assert len(row["result_hash"]) == 64
    hashes = {row["result_hash"] for row in report["rows"]}
    assert len(hashes) == 1
    assert "colo4" in report["speedups"]
    assert report["recommended_modes"]["colo4"] in ("incremental", "full")

    # The fresh report gates cleanly against itself as a baseline.
    assert main(["bench", "colo4", "--check", str(out)]) == 0


def test_bench_list_and_bad_scenario(capsys):
    assert main(["bench", "--list"]) == 0
    assert "dense" in capsys.readouterr().out
    assert main(["bench", "does-not-exist"]) == 1
    assert "unknown scenario" in capsys.readouterr().err


def test_alloc_command(tmp_path, capsys):
    import json

    out = tmp_path / "alloc.json"
    assert main(["alloc", "--iterations", "400", "--scale", "0.1",
                 "--batch", "4", "--json-out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "mask-law churn" in printed and "serving cells" in printed
    for allocation in ("krisp", "pooled", "pooled-contention"):
        assert allocation in printed

    payload = json.loads(out.read_text())
    assert payload["schema"] == 1
    assert [row["allocation"] for row in payload["law_audit"]] == \
        ["krisp", "pooled", "pooled-contention"]
    assert all(row["violations"] == 0 for row in payload["law_audit"])
    assert all(len(row["result_hash"]) == 64 for row in payload["cells"])
    assert payload["chaos"] == []  # not requested
    # Pool statistics only exist for the pooled policies.
    assert "pool" not in payload["law_audit"][0]
    assert payload["law_audit"][1]["pool"]["pool_hits"] > 0


def test_alloc_command_rejects_unknown_model(capsys):
    assert main(["alloc", "gpt4", "--iterations", "50"]) == 2
    assert "unknown model" in capsys.readouterr().err


def test_chaos_command_accepts_allocation(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["chaos", "squeezenet", "-n", "2", "-p", "krisp-i",
                 "-s", "dropout", "--scale", "0.1", "--batch", "4",
                 "--allocation", "pooled", "--sizing", "predictive"]) == 0
