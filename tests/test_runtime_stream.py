"""Integration tests for HSA runtime, streams, and the command processor."""

import pytest

from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.exec_model import ExecutionModelConfig
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.topology import GpuTopology
from repro.runtime.hsa import HsaRuntime
from repro.runtime.ioctl import IoctlModel
from repro.runtime.stream import Stream
from repro.sim.engine import Simulator

TOPO = GpuTopology.mi50()
CFG = ExecutionModelConfig(launch_overhead=0.0, intra_cu_alpha=1.0)


def make_stack():
    sim = Simulator()
    device = GpuDevice(sim, TOPO, exec_config=CFG)
    runtime = HsaRuntime(sim, device)
    return sim, device, runtime


def kernel(name="k", workgroups=60, wg_duration=1e-3):
    return KernelDescriptor(name=name, workgroups=workgroups,
                            wg_duration=wg_duration, occupancy=1,
                            mem_intensity=0.0)


def test_stream_serializes_kernels():
    sim, device, runtime = make_stack()
    stream = Stream(runtime, name="s")
    ends = []
    for i in range(3):
        stream.launch_kernel(kernel(f"k{i}")).on_fire(
            lambda r: ends.append(sim.now))
    sim.run()
    assert len(ends) == 3
    # Each kernel takes 1ms; they must not overlap.
    assert ends[1] - ends[0] >= 1e-3
    assert ends[2] - ends[1] >= 1e-3


def test_streams_run_concurrently():
    sim, device, runtime = make_stack()
    a, b = Stream(runtime, name="a"), Stream(runtime, name="b")
    ends = {}
    # Disjoint halves: no contention, both finish in ~their own time.
    a.set_cu_mask(CUMask.from_cus(TOPO, [TOPO.cu_index(se, c)
                                         for se in range(4) for c in range(7)]))
    b.set_cu_mask(CUMask.from_cus(TOPO, [TOPO.cu_index(se, c)
                                         for se in range(4) for c in range(8, 15)]))
    sim.run()  # let the IOCTLs land before launching
    a.launch_kernel(kernel("ka", workgroups=28)).on_fire(
        lambda r: ends.setdefault("a", sim.now))
    b.launch_kernel(kernel("kb", workgroups=28)).on_fire(
        lambda r: ends.setdefault("b", sim.now))
    start = sim.now
    sim.run()
    assert ends["a"] - start < 2e-3
    assert ends["b"] - start < 2e-3


def test_stream_mask_restricts_execution():
    sim, device, runtime = make_stack()
    stream = Stream(runtime, name="s")
    stream.set_cu_mask(CUMask.first_n(TOPO, 15))
    sim.run()
    ends = []
    # 60 WGs on one SE of 15 CUs -> 4 waves instead of 1.
    stream.launch_kernel(kernel()).on_fire(lambda r: ends.append(sim.now))
    start = sim.now
    sim.run()
    assert ends[0] - start >= 4e-3


def test_rightsizer_hook_tags_launches():
    sim, device, runtime = make_stack()
    seen = []

    def sizer(desc):
        seen.append(desc.name)
        return 17

    stream = Stream(runtime, name="s", rightsizer=sizer)
    stream.launch_kernel(kernel("tagged"))
    sim.run()
    assert seen == ["tagged"]
    # Without an allocator installed the queue mask is still used, but the
    # launch carried the requested size.
    assert stream.kernels_launched == 1


def test_synchronize_signal_fires_after_all_work():
    sim, device, runtime = make_stack()
    stream = Stream(runtime, name="s")
    for i in range(2):
        stream.launch_kernel(kernel(f"k{i}"))
    times = []
    stream.synchronize_signal().on_fire(lambda r: times.append(sim.now))
    sim.run()
    assert times and times[0] >= 2e-3


def test_synchronize_on_empty_stream_fires_immediately():
    sim, device, runtime = make_stack()
    stream = Stream(runtime, name="s")
    signal = stream.synchronize_signal()
    fired = []
    signal.on_fire(lambda v: fired.append(sim.now))
    sim.run()
    assert fired == [0.0]


def test_ioctl_serializes_requests():
    sim = Simulator()
    ioctl = IoctlModel(sim, latency=10e-6)
    done = []
    for i in range(3):
        ioctl.request(lambda i=i: done.append((i, sim.now)))
    sim.run()
    assert [d[0] for d in done] == [0, 1, 2]
    assert done[0][1] == pytest.approx(10e-6)
    assert done[2][1] == pytest.approx(30e-6)
    assert ioctl.calls_completed == 3
    assert ioctl.total_wait_time == pytest.approx(10e-6 + 20e-6)


def test_ioctl_rejects_negative_latency():
    with pytest.raises(ValueError):
        IoctlModel(Simulator(), latency=-1.0)


def test_set_queue_cu_mask_takes_ioctl_time():
    sim, device, runtime = make_stack()
    queue = runtime.create_queue("q")
    applied = []
    runtime.set_queue_cu_mask(queue, CUMask.first_n(TOPO, 10),
                              on_done=lambda: applied.append(sim.now))
    assert queue.cu_mask.count() == 60  # not yet applied
    sim.run()
    assert queue.cu_mask.count() == 10
    assert applied[0] == pytest.approx(runtime.ioctl.latency)


def test_empty_queue_mask_rejected():
    sim, device, runtime = make_stack()
    queue = runtime.create_queue("q")
    with pytest.raises(ValueError):
        queue.set_cu_mask(CUMask.none(TOPO))


def test_duplicate_queue_registration_rejected():
    sim, device, runtime = make_stack()
    queue = runtime.create_queue("q")
    with pytest.raises(ValueError):
        runtime.command_processor.register_queue(queue)
