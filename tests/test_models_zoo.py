"""Calibration tests: the model zoo versus paper Table III."""

import pytest

from repro.gpu.cu_mask import CUMask
from repro.gpu.topology import GpuTopology
from repro.models.kernels import (
    compute_kernel,
    full_gpu_kernel,
    giant_streaming_kernel,
    streaming_kernel,
    stretch_waves,
)
from repro.models.zoo import (
    ALL_MODEL_NAMES,
    MODEL_NAMES,
    TABLE_III,
    get_model,
    vector_mul_kernel,
)
from repro.profiling.kernel_profiler import KernelProfiler
from repro.profiling.model_profiler import run_inference_once

TOPO = GpuTopology.mi50()
PROFILER = KernelProfiler()


# -- kernel templates hit their minCU targets -------------------------------

@pytest.mark.parametrize("target", [4, 8, 12, 21, 26, 32, 45, 55])
def test_compute_kernel_mincu(target):
    desc = compute_kernel("t", target, 100e-6)
    assert abs(PROFILER.min_cus(desc) - target) <= 1


def test_full_gpu_kernel_mincu():
    for waves in (1, 2, 3):
        desc = full_gpu_kernel("f", 1e-3, waves=waves)
        assert PROFILER.min_cus(desc) == 60


@pytest.mark.parametrize("target", [4, 6, 8, 12, 21])
def test_streaming_kernel_mincu(target):
    desc = streaming_kernel("s", target, 50e-6)
    assert abs(PROFILER.min_cus(desc) - target) <= 1


@pytest.mark.parametrize("target", [6, 10, 15, 20])
def test_giant_streaming_kernel_mincu_small_despite_huge_grid(target):
    desc = giant_streaming_kernel("g", target, 500e-6)
    assert desc.kernel_size > TOPO.max_threads  # above the thread limit
    assert abs(PROFILER.min_cus(desc) - target) <= 3


def test_stretch_waves_preserves_duration():
    base = compute_kernel("t", 45, 1e-3, flat_frac=0.4)
    stretched = stretch_waves(base, 3)
    assert stretched.workgroups == base.workgroups * 3
    full = CUMask.all_cus(TOPO)
    lat_base = PROFILER.latency_at(base, 60)
    lat_stretched = PROFILER.latency_at(stretched, 60)
    assert lat_stretched == pytest.approx(lat_base, rel=1e-9)


def test_template_validation():
    with pytest.raises(ValueError):
        compute_kernel("t", 0, 1e-3)
    with pytest.raises(ValueError):
        compute_kernel("t", 10, -1.0)
    with pytest.raises(ValueError):
        compute_kernel("t", 10, 1e-3, flat_frac=1.0)
    with pytest.raises(ValueError):
        full_gpu_kernel("f", 1e-3, waves=0)
    with pytest.raises(ValueError):
        giant_streaming_kernel("g", 60, 1e-3)


# -- zoo-level calibration ----------------------------------------------------

@pytest.mark.parametrize("name", MODEL_NAMES)
def test_kernel_count_matches_table3_exactly(name):
    model = get_model(name)
    assert model.kernel_count == TABLE_III[name][0]
    assert len(model.trace(32)) == TABLE_III[name][0]


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_isolated_latency_within_25pct_of_table3(name):
    model = get_model(name)
    latency = run_inference_once(
        model.trace(32), CUMask.all_cus(TOPO)
    ) + model.host_gap_total(32)
    paper = TABLE_III[name][2] * 1e-3
    assert latency == pytest.approx(paper, rel=0.25)


@pytest.mark.parametrize("name", ALL_MODEL_NAMES)
def test_traces_scale_with_batch(name):
    model = get_model(name)
    for batch in (8, 16, 32):
        trace = model.trace(batch)
        assert len(trace) == model.kernel_count
    lat32 = run_inference_once(model.trace(32), CUMask.all_cus(TOPO))
    lat8 = run_inference_once(model.trace(8), CUMask.all_cus(TOPO))
    assert lat8 < lat32  # smaller batches are faster end-to-end


def test_segments_partition_the_trace():
    model = get_model("alexnet")
    segments = model.segments(32)
    flat = [d for burst, _gap in segments for d in burst]
    assert [d.name for d in flat] == [d.name for d in model.trace(32)]
    assert model.host_gap_total(32) == pytest.approx(
        sum(gap for _b, gap in segments))
    assert model.host_gap_total(32) > 0.03  # alexnet is host-heavy


def test_models_without_gaps_have_single_segment():
    model = get_model("vgg19")
    segments = model.segments(32)
    assert len(segments) == 1
    assert segments[0][1] == 0.0


def test_unknown_model_rejected():
    with pytest.raises(KeyError):
        get_model("resnet9000")


def test_invalid_batch_rejected():
    with pytest.raises(ValueError):
        get_model("albert").trace(0)


def test_vector_mul_kernel_shape():
    desc = vector_mul_kernel(workgroups=240)
    assert desc.workgroups == 240
    assert desc.name == "vectorMulKernel"
