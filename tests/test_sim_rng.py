"""Unit tests for named RNG streams."""

from repro.sim.rng import RngRegistry


def test_same_name_same_seed_reproduces():
    a = RngRegistry(7).stream("model")
    b = RngRegistry(7).stream("model")
    assert a.random(5).tolist() == b.random(5).tolist()


def test_different_names_are_independent():
    reg = RngRegistry(7)
    a = reg.stream("a").random(5).tolist()
    b = reg.stream("b").random(5).tolist()
    assert a != b


def test_stream_is_cached_not_restarted():
    reg = RngRegistry(7)
    first = reg.stream("x").random()
    second = reg.stream("x").random()
    assert first != second  # same generator, advancing state


def test_mapping_independent_of_creation_order():
    reg1 = RngRegistry(3)
    reg1.stream("a")
    va = reg1.stream("b").random()
    reg2 = RngRegistry(3)
    vb = reg2.stream("b").random()
    assert va == vb


def test_fork_derives_independent_registry():
    reg = RngRegistry(1)
    f1 = reg.fork("cell-1")
    f2 = reg.fork("cell-2")
    assert f1.seed != f2.seed
    assert f1.stream("s").random() != f2.stream("s").random()
    # Forks are themselves deterministic.
    assert RngRegistry(1).fork("cell-1").seed == f1.seed
