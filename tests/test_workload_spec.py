"""Tests for workload specs (repro.workload.spec): round-trips, unknown-
key tolerance, content hashing, and the rate-result cache contract."""

import json

import pytest

from repro.exp.cache import (
    RateResultCache,
    rate_cache_key,
    rate_result_from_dict,
    rate_result_hash,
    rate_result_to_dict,
)
from repro.server.experiment import ExperimentConfig
from repro.server.metrics import LatencyStats
from repro.server.rate_experiment import RateResult
from repro.workload import (
    DiurnalArrivals,
    HeterogeneousWorkloadSpec,
    HomogeneousWorkloadSpec,
    OnOffArrivals,
    PoissonArrivals,
    RequestClass,
    TraceEntry,
    TraceWorkloadSpec,
    load_workload,
    spec_hash,
    workload_from_dict,
    workload_from_yaml,
    workload_to_yaml,
)

POISSON = HomogeneousWorkloadSpec("squeezenet", PoissonArrivals(rate=50.0),
                                  batch_size=4)
LLM = HomogeneousWorkloadSpec("llm-tiny", PoissonArrivals(rate=30.0),
                              batch_size=8, output_tokens=(1, 8))
MIX = HeterogeneousWorkloadSpec(
    classes=(RequestClass("squeezenet", batch_size=4, weight=3.0),
             RequestClass("mobilenet", batch_size=4, weight=1.0)),
    arrivals=OnOffArrivals(on_rate=80.0, on_duration=0.2,
                           off_duration=0.1, off_rate=10.0))
TRACE = TraceWorkloadSpec(entries=(
    TraceEntry(time=0.0, model="squeezenet", batch_size=4),
    TraceEntry(time=0.1, model="squeezenet", batch_size=4),
    TraceEntry(time=0.25, model="squeezenet", batch_size=4),
))
ALL_SPECS = [POISSON, LLM, MIX, TRACE]


# -- round-trips -------------------------------------------------------------

@pytest.mark.parametrize("spec", ALL_SPECS,
                         ids=lambda s: type(s).__name__)
def test_dict_round_trip(spec):
    assert workload_from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize("spec", ALL_SPECS,
                         ids=lambda s: type(s).__name__)
def test_yaml_round_trip(spec):
    text = workload_to_yaml(spec)
    assert workload_from_yaml(text) == spec
    # YAML -> spec -> YAML is a fixpoint (sorted keys, stable layout).
    assert workload_to_yaml(workload_from_yaml(text)) == text


def test_dicts_are_json_native():
    for spec in ALL_SPECS:
        json.dumps(spec.to_dict(), sort_keys=True)  # must not raise


def test_load_workload_json_and_yaml(tmp_path):
    yml = tmp_path / "spec.yaml"
    yml.write_text(workload_to_yaml(MIX))
    assert load_workload(yml) == MIX
    js = tmp_path / "spec.json"
    js.write_text(json.dumps(LLM.to_dict()))
    assert load_workload(js) == LLM


# -- unknown-key tolerance (SloGuard.from_dict convention) -------------------

def test_unknown_keys_are_tolerated_at_every_level():
    payload = MIX.to_dict()
    payload["future_top"] = 1
    payload["arrivals"]["future_arrival"] = 2
    payload["classes"][0]["future_class"] = 3
    assert workload_from_dict(payload) == MIX


def test_unknown_spec_kind_is_rejected():
    with pytest.raises(ValueError, match="unknown workload-spec kind"):
        workload_from_dict({"kind": "quantum"})


# -- spec semantics ----------------------------------------------------------

def test_offered_rps_scales_requests_not_batches():
    assert POISSON.offered_rps() == pytest.approx(50.0 * 4)
    # weighted mean batch = 4 for the mix; onoff mean rate is duty-cycled
    assert MIX.offered_rps() == pytest.approx(
        MIX.arrivals.mean_rate() * 4)


def test_at_rate_rescales_to_requested_load():
    for spec in ALL_SPECS:
        scaled = spec.at_rate(123.0)
        assert scaled.offered_rps() == pytest.approx(123.0)
        assert type(scaled) is type(spec)


def test_mixed_batch_sizes_are_rejected():
    mixed = HeterogeneousWorkloadSpec(
        classes=(RequestClass("squeezenet", batch_size=4),
                 RequestClass("mobilenet", batch_size=8)),
        arrivals=PoissonArrivals(rate=10.0))
    with pytest.raises(ValueError, match="mixed per-class batch sizes"):
        mixed.request_batch_size()


def test_trace_entries_must_be_sorted():
    with pytest.raises(ValueError, match="sorted"):
        TraceWorkloadSpec(entries=(
            TraceEntry(time=0.5, model="squeezenet"),
            TraceEntry(time=0.1, model="squeezenet")))


def test_output_tokens_validation():
    with pytest.raises(ValueError):
        HomogeneousWorkloadSpec("llm-tiny", PoissonArrivals(rate=1.0),
                                output_tokens=(0, 4))
    with pytest.raises(ValueError):
        RequestClass("llm-tiny", output_tokens=(5, 2))


# -- content hashing ---------------------------------------------------------

def test_spec_hash_is_stable_and_discriminating():
    assert spec_hash(POISSON) == spec_hash(
        HomogeneousWorkloadSpec("squeezenet", PoissonArrivals(rate=50.0),
                                batch_size=4))
    hashes = {spec_hash(s) for s in ALL_SPECS}
    assert len(hashes) == len(ALL_SPECS)
    # Rate changes move the hash too.
    assert spec_hash(POISSON.at_rate(100.0)) != spec_hash(POISSON)


# -- rate cache contract -----------------------------------------------------

CONFIG = ExperimentConfig(("squeezenet",) * 2, policy="krisp-i",
                          batch_size=4)


def test_rate_cache_key_distinguishes_specs_and_legacy():
    legacy = rate_cache_key(CONFIG, 100.0, 0.5)
    keyed = {rate_cache_key(CONFIG, 100.0, 0.5, workload=s)
             for s in ALL_SPECS}
    assert legacy not in keyed
    assert len(keyed) == len(ALL_SPECS)
    # Only-when-given folding: the legacy key has no workload axis.
    assert rate_cache_key(CONFIG, 100.0, 0.5) == legacy


def _result(p50=0.005):
    samples = [p50] * 10
    return RateResult(offered_rps=100.0, achieved_rps=98.0,
                      latency=LatencyStats.from_samples(samples),
                      queue_residue=1)


def test_rate_result_round_trip_and_hash():
    result = _result()
    payload = rate_result_to_dict(result)
    assert rate_result_from_dict(payload) == result
    assert rate_result_hash(result) == rate_result_hash(_result())
    assert rate_result_hash(result) != rate_result_hash(_result(p50=0.006))


def test_rate_result_cache_round_trip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = RateResultCache()
    key = rate_cache_key(CONFIG, 100.0, 0.5, workload=POISSON)
    assert cache.get(key) is None
    assert cache.stats.misses == 1
    result = _result()
    cache.put(key, result, context={"offered_rps": 100.0})
    assert cache.get(key) == result
    assert cache.stats.hits == 1
    assert cache.stats.stores == 1


def test_rate_result_cache_treats_corruption_as_miss(tmp_path,
                                                     monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = RateResultCache()
    key = rate_cache_key(CONFIG, 100.0, 0.5)
    cache.put(key, _result())
    cache.path_for(key).write_text("{ not json")
    assert cache.get(key) is None
    assert not cache.path_for(key).exists()  # corrupt entry evicted
