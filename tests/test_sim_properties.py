"""Property tests: the sim core's bit-identity contract, all axes at once.

The engine offers three independent execution choices — event queue
({heap, calendar}), rate recompute ({incremental, full}), and rate math
({numpy, scalar}) — all documented as pure implementation details: any
combination must drain the same events in the same order and produce the
identical float sequence.  These tests drive randomly generated
launch / retire / fault / time-advance programs (hypothesis-shrinkable,
so a violation minimises to a small program) through every universe and
require byte-identical completion order, per-step rate snapshots, and
therefore an identical content hash of the whole run.

Alongside the random programs, pin tests freeze the equal-timestamp
tie-break (priority, then schedule order) that the batching fast path
must preserve.
"""

import hashlib
import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.topology import GpuTopology
from repro.sim.engine import Simulator

MAX_LIVE = 40

DESCRIPTORS = (
    KernelDescriptor("conv_a", workgroups=96, mem_intensity=0.0),
    KernelDescriptor("conv_b", workgroups=48, mem_intensity=0.3,
                     flat_time=2e-6),
    KernelDescriptor("gemm", workgroups=240, mem_intensity=0.5),
    KernelDescriptor("stream", workgroups=24, mem_intensity=0.9,
                     flat_time=1e-6),
    KernelDescriptor("tiny", workgroups=4, mem_intensity=0.2),
)

_TOTAL_CUS = GpuTopology.mi50().total_cus

#: The universes every program must agree across.  Scalar rates are
#: exercised on both recompute modes but one queue (the queue cannot
#: interact with the rate math; keeping the matrix at six universes
#: keeps the suite's runtime in check).
UNIVERSES = (
    ("heap", "incremental", False),
    ("heap", "full", False),
    ("calendar", "incremental", False),
    ("calendar", "full", False),
    ("heap", "incremental", True),
    ("heap", "full", True),
)

# -- program generation -------------------------------------------------------

_launch = st.tuples(
    st.just("launch"),
    st.integers(0, len(DESCRIPTORS) - 1),
    st.lists(st.integers(0, _TOTAL_CUS - 1),
             min_size=1, max_size=8, unique=True).map(sorted),
    st.sampled_from(("w0", "w1")),
)
_advance = st.tuples(
    st.just("advance"),
    st.floats(1e-6, 400e-6, allow_nan=False, allow_infinity=False),
)
_fault_scale = st.tuples(
    st.just("fault_scale"),
    st.sampled_from((1.0, 1.5, 2.0, 3.5)),
    st.sampled_from(("w0", None)),
)
_fault_bw = st.tuples(
    st.just("fault_bw"),
    st.floats(-1.5, 1.5, allow_nan=False, allow_infinity=False),
)

#: Launch/advance dominate so programs keep a loaded device (the regime
#: where incremental recompute and batching actually diverge if wrong).
_step = st.one_of(_launch, _launch, _advance, _advance,
                  _fault_scale, _fault_bw)

programs = st.lists(_step, min_size=30, max_size=200)


def _drive(program, queue: str, recompute: str, scalar: bool):
    """Replay ``program`` in one universe; return its observable record."""
    saved = os.environ.get("REPRO_SCALAR_RATES")
    os.environ["REPRO_SCALAR_RATES"] = "1" if scalar else "0"
    try:
        sim = Simulator(queue=queue)
        device = GpuDevice(sim, recompute=recompute)
    finally:
        if saved is None:
            os.environ.pop("REPRO_SCALAR_RATES", None)
        else:
            os.environ["REPRO_SCALAR_RATES"] = saved
    topology = device.topology
    completions: list[tuple[str, float]] = []
    live = [0]

    def on_complete(record):
        live[0] -= 1
        completions.append((record.launch.descriptor.name, sim.now))

    snapshots = []
    for step in program:
        op = step[0]
        if op == "launch":
            if live[0] < MAX_LIVE:
                _, desc_idx, cus, tag = step
                device.launch(
                    KernelLaunch(descriptor=DESCRIPTORS[desc_idx], tag=tag),
                    CUMask.from_cus(topology, cus),
                    on_complete=on_complete)
                live[0] += 1
        elif op == "advance":
            sim.run(until=sim.now + step[1])
        elif op == "fault_scale":
            device.set_fault_latency_scale(step[1], tag=step[2])
        else:
            device.add_fault_bandwidth_demand(step[1])
        device.sync_progress()  # numpy mode: arrays are authoritative
        snapshots.append(tuple(
            (r.launch.descriptor.name, r.seq_no, r.eff_latency, r.progress)
            for r in sorted(device._running.values(),
                            key=lambda rec: rec.seq_no)))

    sim.run(until=sim.now + 1.0)  # drain remaining completions
    return {
        "snapshots": snapshots,
        "completions": completions,
        "events": sim.events_executed,
        "batches": sim.batches_drained,
        # repr round-trips floats exactly, so equal hashes == equal bits.
        "hash": hashlib.sha256(
            repr((snapshots, completions)).encode()).hexdigest(),
    }


@given(programs)
@settings(max_examples=12, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_programs_agree_across_all_universes(program):
    reference = _drive(program, *UNIVERSES[0])
    for universe in UNIVERSES[1:]:
        other = _drive(program, *universe)
        assert other["snapshots"] == reference["snapshots"], universe
        assert other["completions"] == reference["completions"], universe
        assert other["hash"] == reference["hash"], universe
        # The queues must also agree on how events group into instants —
        # batching is about *when* work drains, never what it computes.
        assert other["events"] == reference["events"], universe
        assert other["batches"] == reference["batches"], universe


# -- queue pop-order equivalence (engine level, no device) --------------------

_schedules = st.lists(
    st.tuples(st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
              st.integers(-10, 10)),
    min_size=1, max_size=120)


@given(_schedules, st.sets(st.integers(0, 119)))
@settings(max_examples=40, deadline=None, derandomize=True)
def test_calendar_and_heap_pop_identical_orders(entries, cancel_indices):
    orders: list[list[int]] = []
    for queue in ("heap", "calendar"):
        sim = Simulator(queue=queue)
        order: list[int] = []
        events = [
            sim.schedule(time, lambda i=i: order.append(i),
                         priority=priority)
            for i, (time, priority) in enumerate(entries)
        ]
        for i in cancel_indices:
            if i < len(events):
                events[i].cancel()
        sim.run()
        orders.append(order)
    assert orders[0] == orders[1]


# -- equal-timestamp tie-break pin --------------------------------------------

def test_equal_timestamp_ties_drain_by_priority_then_schedule_order():
    """The documented tie-break — (priority, seq) — survives batching.

    Four events share one instant; the engine must drain them as a
    single batch ordered by priority, then schedule order, regardless
    of queue implementation.
    """
    for queue in ("heap", "calendar"):
        sim = Simulator(queue=queue)
        order: list[str] = []
        sim.schedule(1.0, lambda: order.append("p0-first"), priority=0)
        sim.schedule(1.0, lambda: order.append("p-10"), priority=-10)
        sim.schedule(1.0, lambda: order.append("p0-second"), priority=0)
        sim.schedule(1.0, lambda: order.append("p10"), priority=10)
        sim.schedule(0.5, lambda: order.append("early"), priority=50)
        sim.run()
        assert order == [
            "early", "p-10", "p0-first", "p0-second", "p10"], queue
        assert sim.batches_drained == 2, queue


def test_same_instant_insertion_during_drain_stays_in_the_batch():
    """A callback scheduling work at the *current* instant must see it
    run at that instant (after already-pending same-time events of equal
    priority — it drew a later seq), identically in both queues.
    """
    results = []
    for queue in ("heap", "calendar"):
        sim = Simulator(queue=queue)
        order: list[str] = []

        def first():
            order.append("first")
            sim.schedule(sim.now, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert sim.now == 1.0
        results.append((order, sim.batches_drained))
    assert results[0] == results[1]
    assert results[0][0] == ["first", "second", "nested"]
