"""Incremental vs full rate recomputation: bit-identity property tests.

The incremental dirty-set path must produce the exact float sequence of
the full O(all-residents) sweep.  These tests replay identical random
launch / retire / fault / time-advance programs against two independent
universes — one device per recompute mode — and require exact equality
of every resident's ``eff_latency``/``progress`` and of all completion
times, plus the device's own :meth:`GpuDevice.check_rate_invariant`
(fresh recompute == cached rate) after every step.
"""

import math

from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.topology import GpuTopology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

STEPS = 200
MAX_LIVE = 40

DESCRIPTORS = (
    KernelDescriptor("conv_a", workgroups=96, mem_intensity=0.0),
    KernelDescriptor("conv_b", workgroups=48, mem_intensity=0.3,
                     flat_time=2e-6),
    KernelDescriptor("gemm", workgroups=240, mem_intensity=0.5),
    KernelDescriptor("stream", workgroups=24, mem_intensity=0.9,
                     flat_time=1e-6),
    KernelDescriptor("tiny", workgroups=4, mem_intensity=0.2),
)


def _drive(full_recompute: bool, seed: int):
    """Run one random program; return (step snapshots, completions)."""
    sim = Simulator()
    device = GpuDevice(sim, full_recompute=full_recompute)
    topology = device.topology
    rng = RngRegistry(seed=seed).stream("test/incremental")
    completions: list[tuple[str, float]] = []
    live = [0]

    def on_complete(record):
        live[0] -= 1
        completions.append((record.launch.descriptor.name, sim.now))

    snapshots = []
    for _ in range(STEPS):
        action = float(rng.random())
        # Draw every parameter unconditionally so both universes consume
        # the stream identically regardless of which branch runs.
        desc = DESCRIPTORS[int(rng.integers(len(DESCRIPTORS)))]
        width = int(rng.integers(1, 9))
        cus = sorted(int(c) for c in rng.choice(
            topology.total_cus, size=width, replace=False))
        dt = float(rng.uniform(1e-6, 400e-6))
        scale = (1.0, 2.0, 3.5)[int(rng.integers(3))]
        tagged = bool(rng.integers(2))
        bw = float(rng.uniform(-1.5, 1.5))

        if action < 0.45 and live[0] < MAX_LIVE:
            device.launch(
                KernelLaunch(descriptor=desc, tag="w0" if tagged else "w1"),
                CUMask.from_cus(topology, cus),
                on_complete=on_complete)
            live[0] += 1
        elif action < 0.80:
            sim.run(until=sim.now + dt)
        elif action < 0.90:
            device.set_fault_latency_scale(
                scale, tag="w0" if tagged else None)
        else:
            device.add_fault_bandwidth_demand(bw)

        # The incremental path's contract, checked at every step: every
        # skipped (non-dirty) record already holds the exact rate a
        # fresh recompute assigns.
        device.check_rate_invariant()
        snapshots.append(tuple(
            (r.launch.descriptor.name, r.seq_no, r.eff_latency, r.progress)
            for r in sorted(device._running.values(),
                            key=lambda rec: rec.seq_no)))

    sim.run(until=sim.now + 1.0)  # drain remaining completions
    return snapshots, completions


def test_incremental_path_is_bit_identical_to_full_sweep():
    for seed in (7, 23):
        inc_snaps, inc_done = _drive(False, seed)
        full_snaps, full_done = _drive(True, seed)
        assert inc_snaps == full_snaps
        assert inc_done == full_done
        assert inc_done, "program never completed a kernel"
        for _name, when in inc_done:
            assert math.isfinite(when)


def test_env_flag_selects_full_mode(monkeypatch):
    sim = Simulator()
    monkeypatch.setenv("REPRO_FULL_RECOMPUTE", "1")
    assert GpuDevice(sim).full_recompute is True
    monkeypatch.setenv("REPRO_FULL_RECOMPUTE", "0")
    assert GpuDevice(sim).full_recompute is False
    monkeypatch.delenv("REPRO_FULL_RECOMPUTE")
    assert GpuDevice(sim).full_recompute is False
    # The explicit constructor argument wins over the environment.
    monkeypatch.setenv("REPRO_FULL_RECOMPUTE", "1")
    assert GpuDevice(sim, full_recompute=False).full_recompute is False


def test_check_rate_invariant_detects_a_stale_rate():
    sim = Simulator()
    device = GpuDevice(sim)
    topology = device.topology
    device.launch(KernelLaunch(descriptor=DESCRIPTORS[0]),
                  CUMask.first_n(topology, 4))
    record = next(iter(device._running.values()))
    record.eff_latency *= 2.0
    try:
        device.check_rate_invariant()
    except AssertionError:
        pass
    else:
        raise AssertionError("stale cached rate went undetected")
