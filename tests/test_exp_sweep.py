"""Determinism and failure-isolation tests for the sweep orchestrator.

The orchestrator's core promise: the same ``ExperimentConfig`` run
serially, through the process pool, and via a cache hit yields
bit-identical ``ExperimentResult`` fields — and a raising cell lands in
``SweepReport.failed`` without aborting its siblings.
"""

import dataclasses

import pytest

from repro.exp.sweep import Sweep, default_jobs, run_sweep
from repro.server.experiment import ExperimentConfig, run_experiment

#: Small, fast cells (short windows) so the pool round-trips stay cheap.
CONFIGS = (
    ExperimentConfig(("squeezenet",), policy="krisp-i", batch_size=4,
                     requests_scale=0.25),
    ExperimentConfig(("shufflenet",) * 2, policy="mps-default", batch_size=4,
                     requests_scale=0.25),
)

BAD = ExperimentConfig(("no-such-model",), batch_size=4)


def _assert_identical(a, b):
    """Field-for-field equality, spelled out so a drift names the field."""
    assert a.config == b.config
    assert a.window == b.window
    assert a.total_rps == b.total_rps
    assert a.energy_joules == b.energy_joules
    assert a.energy_per_request == b.energy_per_request
    assert a.gpu_utilization == b.gpu_utilization
    assert a.workers == b.workers


def test_serial_pool_and_cache_paths_are_bit_identical(monkeypatch,
                                                       tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    serial = {config: run_experiment(config) for config in CONFIGS}

    pooled = run_sweep(CONFIGS, jobs=2, cache=True)
    assert pooled.ok
    assert pooled.ran == len(CONFIGS) and pooled.cached == 0
    for config in CONFIGS:
        _assert_identical(pooled.result(config), serial[config])

    warm = run_sweep(CONFIGS, jobs=2, cache=True)
    assert warm.ok
    assert warm.ran == 0 and warm.cached == len(CONFIGS)
    for config in CONFIGS:
        _assert_identical(warm.result(config), serial[config])


def test_serial_fallback_matches_direct_runs(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    report = run_sweep([CONFIGS[0]], jobs=1, cache=False)
    assert report.ok and report.cached == 0
    _assert_identical(report.result(CONFIGS[0]), run_experiment(CONFIGS[0]))


def test_failing_cell_does_not_abort_siblings(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    report = run_sweep([CONFIGS[0], BAD, CONFIGS[1]], jobs=2, retries=0)
    assert not report.ok
    assert len(report.failed) == 1
    failure = report.failed[0]
    assert failure.config == BAD
    assert failure.attempts == 1
    assert "no-such-model" in failure.traceback
    # Both siblings completed despite the failure.
    for config in CONFIGS:
        assert config in report.results
    with pytest.raises(RuntimeError, match="no-such-model"):
        report.raise_failures()
    with pytest.raises(RuntimeError, match="attempts"):
        report.result(BAD)


def test_failed_cells_are_retried(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    report = run_sweep([BAD], jobs=1, retries=2, cache=False)
    assert report.failed[0].attempts == 3


def test_sweep_builder_dedupes_and_orders():
    sweep = Sweep()
    sweep.add(CONFIGS[0]).add(CONFIGS[1]).add(CONFIGS[0])
    assert sweep.cells == CONFIGS

    grid = Sweep().add_grid(("squeezenet", "shufflenet"),
                            ("krisp-i", "mps-default"), (1, 2),
                            batch_size=8)
    assert len(grid) == 8
    assert all(len(set(c.model_names)) == 1 for c in grid)

    pairs = Sweep().add_pairs(("a", "b", "c"), ("krisp-i",), batch_size=8)
    assert len(pairs) == 3
    assert all(len(c.model_names) == 2 for c in pairs)


def test_report_accounting(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    report = run_sweep([CONFIGS[0]], jobs=1)
    assert report.cell_time > 0.0
    assert report.wall_time > 0.0
    assert report.speedup > 0.0
    assert "1 run" in report.summary()


def test_default_jobs_honours_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "two")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        default_jobs()
    monkeypatch.delenv("REPRO_JOBS")
    assert default_jobs() >= 1


def test_unknown_config_raises_key_error(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    report = run_sweep([CONFIGS[0]], jobs=1)
    stranger = dataclasses.replace(CONFIGS[0], seed=123)
    with pytest.raises(KeyError):
        report.result(stranger)


def test_invalid_arguments_rejected():
    with pytest.raises(ValueError, match="jobs"):
        run_sweep([CONFIGS[0]], jobs=0)
    with pytest.raises(ValueError, match="retries"):
        run_sweep([CONFIGS[0]], retries=-1)
