"""Tests for model JSON serialisation and the MPS GPU% layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.topology import GpuTopology
from repro.models.trace_io import (
    load_model,
    model_from_json,
    model_to_json,
    save_model,
)
from repro.models.zoo import get_model
from repro.runtime.mps import (
    MpsControlDaemon,
    cus_to_gpu_percentage,
    gpu_percentage_to_cus,
)

TOPO = GpuTopology.mi50()


# -- trace_io -----------------------------------------------------------------

@pytest.mark.parametrize("name", ["albert", "vgg19", "squeezenet"])
def test_zoo_models_round_trip(name, tmp_path):
    model = get_model(name)
    path = tmp_path / f"{name}.json"
    save_model(model, path)
    loaded = load_model(path)
    assert loaded.name == model.name
    assert loaded.specs == model.specs
    assert loaded.paper_p95_ms == model.paper_p95_ms
    # The reloaded model lowers to identical descriptors.
    assert loaded.trace(32) == model.trace(32)
    assert loaded.segments(32) == model.segments(32)


def test_model_json_validation():
    with pytest.raises(ValueError):
        model_from_json('{"name": "x"}')
    with pytest.raises(ValueError):
        model_from_json('{"name": "x", "kernels": []}')
    with pytest.raises(ValueError):
        model_from_json(
            '{"name": "x", "kernels": [{"style": "stream"}]}')
    with pytest.raises(ValueError):
        model_from_json(
            '{"name": "x", "kernels": [{"style": "stream", "name": "k",'
            ' "duration": 1e-5, "bogus": 1}]}')


def test_hand_authored_model_loads():
    text = """
    {"name": "mini",
     "kernels": [
       {"style": "compute", "name": "gemm", "duration": 1e-4,
        "min_cus": 20},
       {"style": "stream", "name": "relu", "duration": 1e-5,
        "min_cus": 4, "sync_gap": 1e-3}
     ]}
    """
    model = model_from_json(text)
    assert model.kernel_count == 2
    assert model.host_gap_total(32) == pytest.approx(1e-3)
    segments = model.segments(32)
    assert len(segments) == 1  # the gap sits on the final kernel
    assert segments[0][1] == pytest.approx(1e-3)


# -- MPS GPU% layer ------------------------------------------------------------

def test_percentage_to_cus_rounds_up():
    assert gpu_percentage_to_cus(100.0, TOPO) == 60
    assert gpu_percentage_to_cus(50.0, TOPO) == 30
    assert gpu_percentage_to_cus(1.0, TOPO) == 1
    assert gpu_percentage_to_cus(33.4, TOPO) == 21


def test_cus_to_percentage_inverse():
    for cus in (1, 15, 30, 60):
        pct = cus_to_gpu_percentage(cus, TOPO)
        assert gpu_percentage_to_cus(pct, TOPO) == cus


@given(st.floats(min_value=0.1, max_value=100.0))
def test_round_trip_never_shrinks(pct):
    cus = gpu_percentage_to_cus(pct, TOPO)
    assert gpu_percentage_to_cus(cus_to_gpu_percentage(cus, TOPO), TOPO) == cus


def test_bounds_rejected():
    with pytest.raises(ValueError):
        gpu_percentage_to_cus(0.0, TOPO)
    with pytest.raises(ValueError):
        gpu_percentage_to_cus(101.0, TOPO)
    with pytest.raises(ValueError):
        cus_to_gpu_percentage(0, TOPO)


def test_daemon_allocates_disjoint_until_full():
    daemon = MpsControlDaemon(TOPO)
    a = daemon.create_client(50.0)
    b = daemon.create_client(50.0)
    assert a.mask.count() == 30 and b.mask.count() == 30
    assert a.mask.intersect(b.mask).is_empty()
    assert not daemon.oversubscribed


def test_daemon_oversubscription_wraps():
    daemon = MpsControlDaemon(TOPO)
    a = daemon.create_client(75.0)
    b = daemon.create_client(75.0)
    assert daemon.oversubscribed
    assert not a.mask.intersect(b.mask).is_empty()
    assert b.mask.count() == 45


def test_client_ids_increment():
    daemon = MpsControlDaemon(TOPO)
    assert daemon.create_client(10).client_id == 0
    assert daemon.create_client(10).client_id == 1
