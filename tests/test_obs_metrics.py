"""Tests for the metrics registry, exports, and the sim-time sampler."""

import math

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    exponential_buckets,
    linear_buckets,
)
from repro.server.options import RunOptions


# -- primitives --------------------------------------------------------------

def test_counter_only_goes_up():
    registry = MetricsRegistry()
    counter = registry.counter("requests_total", "help text")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = MetricsRegistry().gauge("depth")
    gauge.set(5)
    gauge.inc(-2)
    assert gauge.value == 3.0


def test_histogram_streams_into_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=[1.0, 2.0, 4.0])
    for value in (0.5, 1.0, 1.5, 3.0, 100.0):
        hist.observe(value)
    assert hist.count == 5
    assert hist.sum == pytest.approx(106.0)
    assert hist.min == 0.5 and hist.max == 100.0
    # Inclusive upper bounds + one overflow bucket.
    assert hist.bucket_counts == [2, 1, 1, 1]
    assert hist.cumulative_buckets() == [
        (1.0, 2), (2.0, 3), (4.0, 4), (math.inf, 5)]
    assert hist.mean == pytest.approx(21.2)


def test_histogram_percentile_estimates():
    hist = MetricsRegistry().histogram("h", buckets=[1.0, 2.0, 4.0, 8.0])
    for value in [0.5] * 50 + [3.0] * 49 + [5.0]:
        hist.observe(value)
    assert hist.percentile(50) == 1.0       # bucket upper bound
    assert hist.percentile(99) == 4.0
    assert hist.percentile(100) == 5.0      # capped at observed max
    with pytest.raises(ValueError):
        MetricsRegistry().histogram("empty").percentile(50)


def test_bucket_helpers():
    assert exponential_buckets(1.0, 2.0, 3) == (1.0, 2.0, 4.0)
    assert linear_buckets(1.0, 0.5, 3) == (1.0, 1.5, 2.0)
    with pytest.raises(ValueError):
        exponential_buckets(0.0, 2.0, 3)
    with pytest.raises(ValueError):
        linear_buckets(1.0, 0.0, 3)


# -- registry ----------------------------------------------------------------

def test_registry_get_or_create_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("hits", model="resnet")
    b = registry.counter("hits", model="resnet")
    c = registry.counter("hits", model="vgg")
    assert a is b and a is not c
    assert len(registry) == 2


def test_registry_rejects_kind_mismatch_and_bad_names():
    registry = MetricsRegistry()
    registry.counter("x_total")
    with pytest.raises(ValueError):
        registry.gauge("x_total")
    with pytest.raises(ValueError):
        registry.counter("bad name")
    with pytest.raises(ValueError):
        registry.counter("ok", **{"bad-label": "v"})


def test_prometheus_text_format():
    registry = MetricsRegistry()
    registry.counter("req_total", "requests served", model="a").inc(3)
    registry.gauge("depth", "queue depth").set(2)
    hist = registry.histogram("lat_seconds", "latency", buckets=[0.1, 1.0])
    hist.observe(0.05)
    hist.observe(5.0)
    text = registry.to_prometheus()
    assert "# HELP req_total requests served" in text
    assert "# TYPE req_total counter" in text
    assert 'req_total{model="a"} 3' in text
    assert "depth 2" in text
    assert 'lat_seconds_bucket{le="0.1"} 1' in text
    assert 'lat_seconds_bucket{le="+Inf"} 2' in text
    assert "lat_seconds_sum 5.05" in text
    assert "lat_seconds_count 2" in text
    assert text.endswith("\n")


def test_json_export():
    registry = MetricsRegistry()
    registry.gauge("g").set(1.5)
    hist = registry.histogram("h", buckets=[1.0])
    hist.observe(0.5)
    payload = registry.to_json()
    assert payload["g"]["type"] == "gauge"
    assert payload["g"]["series"][0]["value"] == 1.5
    series = payload["h"]["series"][0]
    assert series["count"] == 1
    assert series["buckets"] == [[1.0, 1], [None, 1]]  # None encodes +Inf


# -- sim-time sampler --------------------------------------------------------

def test_sampler_snapshots_device_state():
    from repro.gpu.cu_mask import CUMask
    from repro.gpu.device import GpuDevice
    from repro.gpu.kernel import KernelDescriptor, KernelLaunch
    from repro.gpu.topology import GpuTopology
    from repro.obs.sampler import SimSampler
    from repro.sim.engine import Simulator

    sim = Simulator()
    topo = GpuTopology.mi50()
    device = GpuDevice(sim, topo)
    registry = MetricsRegistry()
    # Power-of-two interval: tick times accumulate exactly in floats, so
    # the tick count is deterministic (0, 1, 2, 3, 4 x interval).
    interval = 1.0 / 4096
    sampler = SimSampler(sim, device, registry, interval=interval)
    sampler.start(stop_time=4 * interval)

    desc = KernelDescriptor(name="k", workgroups=60, occupancy=1,
                            wg_duration=5e-4)
    device.launch(KernelLaunch(desc), CUMask.first_n(topo, 30))
    sim.run()

    assert registry.counter("krisp_samples_total").value == 5
    hist = registry.histogram("krisp_cu_occupancy_hist")
    assert hist.count == 5
    assert hist.max == 30        # saw the kernel resident on 30 CUs
    assert registry.histogram("krisp_mem_bw_pressure_hist").count == 5
    # The kernel (2 waves x 0.5 ms) outlives the sampling window, so the
    # final snapshot still shows it resident.
    assert registry.gauge("krisp_cu_occupancy").value == 30
    # One kernel resident on all 15 CUs of SE 0 (per-CU counts summed).
    assert registry.gauge("krisp_se_load", se="0").value == 15
    assert registry.gauge("krisp_se_load", se="2").value == 0


def test_sampling_does_not_change_results():
    from repro.server.experiment import ExperimentConfig, run_experiment

    config = ExperimentConfig(("squeezenet",), batch_size=4,
                              requests_scale=0.1)
    plain = run_experiment(config)
    registry = MetricsRegistry()
    sampled = run_experiment(config, RunOptions(metrics=registry))
    assert sampled.workers == plain.workers
    assert sampled.energy_joules == plain.energy_joules
    assert registry.counter("krisp_samples_total").value > 0
    assert registry.gauge("krisp_queue_depth", queue="q0") is not None


# -- sweep integration -------------------------------------------------------

def test_run_sweep_records_cache_metrics(tmp_path, monkeypatch):
    from repro.exp.sweep import run_sweep
    from repro.server.experiment import ExperimentConfig

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cells = [ExperimentConfig(("squeezenet",), batch_size=4,
                              requests_scale=0.1)]

    cold = MetricsRegistry()
    report = run_sweep(cells, jobs=1, options=RunOptions(metrics=cold))
    assert report.ok and report.ran == 1
    assert cold.counter("sweep_cache_hits_total").value == 0
    assert cold.counter("sweep_cache_misses_total").value == 1
    assert cold.gauge("sweep_last_cell_seconds").value > 0
    assert cold.histogram("sweep_cell_seconds").count == 1

    warm = MetricsRegistry()
    report = run_sweep(cells, jobs=1, options=RunOptions(metrics=warm))
    assert report.cached == 1
    assert warm.counter("sweep_cache_hits_total").value == 1
    assert warm.counter("sweep_cache_misses_total").value == 0
    assert warm.histogram("sweep_cell_seconds").count == 0


def test_prometheus_escaping_golden():
    """Golden output for the text-format escaping rules (spec 0.0.4):
    label values escape backslash, quote, and newline (backslash first);
    HELP text escapes backslash and newline but leaves quotes raw."""
    registry = MetricsRegistry()
    registry.counter(
        "weird_total", 'help with \\ backslash, "quotes"\nand newline',
        path='C:\\tmp\n"x"').inc()
    text = registry.to_prometheus()
    assert text == (
        '# HELP weird_total help with \\\\ backslash, "quotes"'
        '\\nand newline\n'
        '# TYPE weird_total counter\n'
        'weird_total{path="C:\\\\tmp\\n\\"x\\""} 1\n'
    )
