"""Tests for the barrier-packet emulation of kernel-scoped partitions."""

import pytest

from repro.core.allocation import ResourceMaskGenerator
from repro.core.krisp import KrispAllocator
from repro.gpu.device import GpuDevice
from repro.gpu.exec_model import ExecutionModelConfig
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.topology import GpuTopology
from repro.runtime.emulation import (
    EmulatedKernelScopedStream,
    EmulationConfig,
    FullGpuAllocator,
    corrected_latency,
    emulation_overhead,
)
from repro.runtime.hsa import HsaRuntime
from repro.runtime.stream import Stream
from repro.sim.engine import Simulator

TOPO = GpuTopology.mi50()
CFG = ExecutionModelConfig(launch_overhead=0.0, intra_cu_alpha=1.0)


def make_stack():
    sim = Simulator()
    device = GpuDevice(sim, TOPO, exec_config=CFG)
    runtime = HsaRuntime(sim, device)
    return sim, device, runtime


def kernel(name="k", workgroups=60):
    return KernelDescriptor(name=name, workgroups=workgroups,
                            wg_duration=1e-4, occupancy=1, mem_intensity=0.0)


def run_trace(stream, sim, n=5):
    last = None
    for i in range(n):
        last = stream.launch_kernel(kernel(f"k{i}"))
    sim.run()
    assert last.fired
    return sim.now


def test_emulated_stream_executes_all_kernels():
    sim, device, runtime = make_stack()
    stream = EmulatedKernelScopedStream(
        runtime, allocator=FullGpuAllocator(), name="emu")
    run_trace(stream, sim, n=7)
    assert device.kernels_completed == 7
    assert stream.barriers_injected == 14


def test_emulation_adds_overhead_over_native():
    """The emulated bracket (barriers + callback + IOCTL) must cost time
    versus a plain stream — the L_over the paper subtracts."""
    sim_n, device_n, runtime_n = make_stack()
    native = run_trace(Stream(runtime_n, name="native"), sim_n)

    sim_e, device_e, runtime_e = make_stack()
    stream = EmulatedKernelScopedStream(
        runtime_e, allocator=FullGpuAllocator(), name="emu")
    emulated = run_trace(stream, sim_e)

    assert emulated > native
    overhead = emulation_overhead(emulated, native)
    # Overhead scales with the kernel count: per-kernel cost is roughly
    # callback + rightsizing + IOCTL + barrier processing.
    per_kernel = overhead / 5
    assert 15e-6 < per_kernel < 60e-6


def test_overhead_scales_with_kernel_count():
    def emu_latency(n):
        sim, device, runtime = make_stack()
        stream = EmulatedKernelScopedStream(
            runtime, allocator=FullGpuAllocator(), name="emu")
        return run_trace(stream, sim, n=n), n

    lat5, _ = emu_latency(5)
    lat10, _ = emu_latency(10)
    # Kernel time and bracket overhead both double.
    assert lat10 == pytest.approx(2 * lat5, rel=0.05)


def test_emulated_masks_are_applied_per_kernel():
    sim, device, runtime = make_stack()
    generator = ResourceMaskGenerator(TOPO)
    allocator = KrispAllocator(generator)
    sizes = iter([12, 30, 60])
    stream = EmulatedKernelScopedStream(
        runtime, allocator=allocator,
        sizer=lambda desc: next(sizes), name="emu")
    masks = []
    device_launch = device.launch

    def spy(launch, mask, on_complete=None):
        masks.append(mask.count())
        return device_launch(launch, mask, on_complete)

    device.launch = spy
    for i in range(3):
        stream.launch_kernel(kernel(f"k{i}", workgroups=12))
    sim.run()
    assert masks == [12, 30, 60]


def test_corrected_latency_formula():
    assert corrected_latency(10.0, 3.0) == 7.0
    assert corrected_latency(2.0, 3.0) == 0.0  # clamped
    with pytest.raises(ValueError):
        corrected_latency(10.0, -1.0)


def test_emulation_overhead_rejects_negative():
    with pytest.raises(ValueError):
        emulation_overhead(1.0, 2.0)


def test_emulation_config_validation():
    with pytest.raises(ValueError):
        EmulationConfig(callback_overhead=-1e-6)


def test_synchronize_signal_on_emulated_stream():
    sim, device, runtime = make_stack()
    stream = EmulatedKernelScopedStream(
        runtime, allocator=FullGpuAllocator(), name="emu")
    empty = stream.synchronize_signal()
    fired = []
    empty.on_fire(lambda v: fired.append(True))
    sim.run()
    assert fired == [True]
