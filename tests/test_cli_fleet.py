"""Tests for the ``fleet`` subcommand and cross-subcommand flag parity."""

import json

from repro.cli import build_parser, main
from repro.workload.arrivals import PoissonArrivals
from repro.workload.spec import HomogeneousWorkloadSpec

#: The shared-flag presence matrix: every listed subcommand must carry
#: the flag with an identical spec; every other subcommand must not.
SHARED_FLAGS = {
    "--jobs": ("sweep", "load", "chaos", "fleet"),
    "--no-cache": ("sweep", "load", "chaos", "fleet"),
    "--json-out": ("sweep", "load", "chaos", "report", "bench", "check",
                   "alloc", "fleet"),
    "--duration": ("rate", "load", "fleet"),
}


def _subcommands(parser):
    return parser._subparsers._group_actions[0].choices


def test_shared_flags_are_identical_everywhere():
    commands = _subcommands(build_parser())
    for flag, expected in SHARED_FLAGS.items():
        seen = None
        for name, command in commands.items():
            actions = {option: action for action in command._actions
                       for option in action.option_strings}
            if name in expected:
                assert flag in actions, f"{name} is missing {flag}"
                action = actions[flag]
                spec = (tuple(action.option_strings), action.dest,
                        action.type, action.default, action.help)
                if seen is None:
                    seen = (name, spec)
                assert spec == seen[1], \
                    f"{name}'s {flag} diverges from {seen[0]}'s"
            else:
                assert flag not in actions, \
                    f"{name} has {flag} but is not in the parity matrix"


def test_every_expected_subcommand_exists():
    assert set(_subcommands(build_parser())) == {
        "profile", "colocate", "table3", "rate", "load", "sweep", "trace",
        "chaos", "report", "bench", "check", "alloc", "fleet"}


def _write_spec(tmp_path, rate=50.0):
    spec = HomogeneousWorkloadSpec(
        model="squeezenet", arrivals=PoissonArrivals(rate), batch_size=4)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    return path


def test_fleet_command(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    spec = _write_spec(tmp_path)
    out = tmp_path / "fleet.json"
    argv = ["fleet", str(spec), "--devices", "1", "2", "--scales", "0.5",
            "1.0", "--duration", "0.6", "--jobs", "1", "--no-cache",
            "--json-out", str(out)]
    assert main(argv) == 0
    printed = capsys.readouterr().out
    assert "fleet grid over 4 cells" in printed
    assert "knee" in printed

    payload = json.loads(out.read_text())
    assert len(payload["rows"]) == 4
    assert {"devices", "router", "offered_rps", "goodput_rps",
            "conservation_ok"} <= set(payload["rows"][0])
    assert all(row["conservation_ok"] for row in payload["rows"])

    # A second uncached run reproduces the document byte-for-byte.
    out2 = tmp_path / "fleet2.json"
    argv2 = argv[:-1] + [str(out2)]
    assert main(argv2) == 0
    capsys.readouterr()
    assert out.read_text() == out2.read_text()


def test_fleet_command_crash_node(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    spec = _write_spec(tmp_path)
    out = tmp_path / "fleet.json"
    assert main(["fleet", str(spec), "--devices", "2", "--scales", "1.0",
                 "--duration", "0.8", "--jobs", "1", "--crash-node", "0",
                 "--crash-time", "0.2", "--json-out", str(out)]) == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    row = payload["rows"][0]
    assert row["crashes"] >= 1 and row["restarts"] >= 1
    assert row["conservation_ok"]
