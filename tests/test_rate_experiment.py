"""Tests for the open-loop (rate-driven) serving extension."""

import pytest

from repro.server.experiment import ExperimentConfig, isolated_baseline, slo_target
from repro.server.rate_experiment import max_sustainable_rate, run_rate_experiment

MODEL = "squeezenet"


def config(workers=2, policy="krisp-i"):
    return ExperimentConfig(model_names=(MODEL,) * workers, policy=policy)


def test_light_load_meets_isolated_latency():
    base = isolated_baseline(MODEL)
    light = run_rate_experiment(config(), offered_rps=0.2 * base.total_rps,
                                duration=1.0)
    assert not light.saturated
    assert light.achieved_rps == pytest.approx(light.offered_rps, rel=0.2)
    # Under light load there is little queueing: p95 near service latency.
    assert light.latency.p95 < 2.5 * base.max_p95()


def test_overload_saturates_and_queues():
    base = isolated_baseline(MODEL)
    heavy = run_rate_experiment(config(),
                                offered_rps=5.0 * base.total_rps,
                                duration=1.0)
    assert heavy.saturated
    assert heavy.achieved_rps < heavy.offered_rps
    # Queueing-inclusive latency blows up under overload.
    assert heavy.latency.p95 > 3.0 * base.max_p95()


def test_latency_monotone_in_offered_load():
    base = isolated_baseline(MODEL)
    p95s = []
    for factor in (0.3, 1.0, 3.0):
        result = run_rate_experiment(
            config(), offered_rps=factor * base.total_rps, duration=1.0)
        p95s.append(result.latency.p95)
    assert p95s[0] <= p95s[1] <= p95s[2]


def test_max_sustainable_rate_is_between_bounds():
    base = isolated_baseline(MODEL)
    slo = slo_target(MODEL)
    best = max_sustainable_rate(config(), slo,
                                low_rps=0.2 * base.total_rps,
                                high_rps=4.0 * base.total_rps,
                                iterations=4)
    # Two co-located workers sustain more than one isolated worker's
    # throughput under the SLO, but less than the unreachable 4x bound.
    assert base.total_rps < best < 4.0 * base.total_rps


def test_rate_experiment_validation():
    with pytest.raises(ValueError):
        run_rate_experiment(config(), offered_rps=0.0)
    with pytest.raises(ValueError):
        max_sustainable_rate(config(), 1.0, low_rps=10.0, high_rps=5.0)
