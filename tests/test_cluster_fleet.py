"""Tests for the fleet grid, its cache, and node-crash resilience."""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterResultCache,
    cached_run_cluster_experiment,
    cluster_cache_key,
    cluster_result_hash,
    run_cluster_experiment,
    run_fleet,
)
from repro.faults.schedule import FaultSchedule, NodeCrash, WorkerCrash
from repro.server.options import RunOptions
from repro.server.slo import SloGuard
from repro.workload.arrivals import DiurnalArrivals, PoissonArrivals
from repro.workload.spec import HomogeneousWorkloadSpec


def _base(**overrides):
    config = dict(devices=2, model_names=("squeezenet",), batch_size=4,
                  pool_size=2, pool_min=1)
    config.update(overrides)
    return ClusterConfig(**config)


def _diurnal_spec():
    return HomogeneousWorkloadSpec(
        model="squeezenet",
        arrivals=DiurnalArrivals(base_rate=50.0, amplitude=0.5, period=0.5),
        batch_size=4)


def _poisson_spec(rate=50.0):
    return HomogeneousWorkloadSpec(
        model="squeezenet", arrivals=PoissonArrivals(rate), batch_size=4)


def test_four_device_diurnal_grid_is_bit_identical_serial_vs_pooled():
    kwargs = dict(devices=(4,), scales=(0.5, 1.0), duration=0.8,
                  use_cache=False)
    serial = run_fleet(_base(devices=4), _diurnal_spec(), jobs=1, **kwargs)
    pooled = run_fleet(_base(devices=4), _diurnal_spec(), jobs=2, **kwargs)
    repeat = run_fleet(_base(devices=4), _diurnal_spec(), jobs=1, **kwargs)
    assert serial.to_json() == pooled.to_json()
    assert serial.to_json() == repeat.to_json()
    assert all(cell.result.conservation_ok for cell in serial.cells)


def test_fleet_report_shape_and_knee():
    report = run_fleet(_base(), _poisson_spec(), devices=(1, 2),
                       routers=("least-loaded", "free-cu"),
                       scales=(0.5, 1.0), duration=0.5, use_cache=False)
    assert len(report.cells) == 2 * 2 * 2
    # Grid order: devices-major, then router, then rate.
    assert [c.devices for c in report.cells] == [1] * 4 + [2] * 4
    payload = report.to_payload()
    assert len(payload["rows"]) == 8
    assert {"devices", "router", "offered_rps", "goodput_rps",
            "node_utilization", "conservation_ok"} \
        <= set(payload["rows"][0])
    assert len(payload["knees"]) == 4
    curve = report.curve(2, "free-cu")
    assert [c.offered_rps for c in curve] == sorted(
        c.offered_rps for c in curve)
    assert "fleet grid" in report.to_text()


def test_cluster_cache_roundtrips_and_hits(tmp_path):
    cache = ClusterResultCache(root=tmp_path)
    kwargs = dict(offered_rps=200.0, duration=0.5, cache=cache)
    first = cached_run_cluster_experiment(_base(), _poisson_spec(), **kwargs)
    assert cache.stats.stores == 1 and cache.stats.hits == 0
    second = cached_run_cluster_experiment(_base(), _poisson_spec(), **kwargs)
    assert cache.stats.hits == 1
    assert cluster_result_hash(first) == cluster_result_hash(second)


def test_cluster_cache_key_discriminates_topology():
    spec = _poisson_spec()
    key = cluster_cache_key(_base(), 200.0, 0.5, workload=spec)
    assert key != cluster_cache_key(_base(devices=4), 200.0, 0.5,
                                    workload=spec)
    assert key != cluster_cache_key(_base(router="affinity"), 200.0, 0.5,
                                    workload=spec)
    assert key != cluster_cache_key(_base(), 200.0, 0.5, workload=spec,
                                    faults=FaultSchedule((NodeCrash(0.2),)))


def test_node_crash_reroutes_to_survivors_and_conserves():
    # Heavy enough that node 0 holds work at the crash instant.
    spec = _poisson_spec(rate=150.0)
    faults = FaultSchedule((NodeCrash(time=0.2, node=0),))
    result = run_cluster_experiment(
        _base(), spec, duration=1.0,
        options=RunOptions(faults=faults, guard=SloGuard()))
    assert result.crashes >= 1 and result.restarts >= 1
    assert result.retried >= 1
    assert result.conservation_ok
    # The surviving node carried traffic while node 0 was down.
    assert result.nodes[1].routed > 0
    assert result.completed > 0
    # Fault-free twin for contrast: no crashes, same arrivals.
    clean = run_cluster_experiment(_base(), spec, duration=1.0)
    assert clean.crashes == 0
    assert clean.issued == result.issued


def test_only_node_crash_events_are_accepted():
    faults = FaultSchedule((WorkerCrash(time=0.2, worker=0),))
    with pytest.raises(ValueError, match="node_crash"):
        run_cluster_experiment(_base(), _poisson_spec(), duration=0.5,
                               options=RunOptions(faults=faults))


def test_cluster_runner_rejects_unsupported_options():
    with pytest.raises(ValueError, match="workload"):
        run_cluster_experiment(
            _base(), _poisson_spec(), duration=0.5,
            options=RunOptions(workload=_poisson_spec()))


def test_batch_size_mismatch_is_rejected():
    spec = HomogeneousWorkloadSpec(
        model="squeezenet", arrivals=PoissonArrivals(50.0), batch_size=8)
    with pytest.raises(ValueError, match="batch"):
        run_cluster_experiment(_base(), spec, duration=0.5)
