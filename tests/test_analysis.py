"""Tests for table/series formatting helpers."""

import pytest

from repro.analysis.series import ascii_curve, format_series
from repro.analysis.tables import format_table


def test_format_table_alignment():
    text = format_table(
        ["model", "rps", "ok"],
        [["albert", 1234.5, True], ["vgg19", 9.87, False]],
        title="demo",
    )
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "model" in lines[1]
    assert "1234.50" in text
    assert "yes" in text and "no" in text


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_format_series():
    text = format_series([1, 2], [0.5, 0.25], x_label="cus", y_label="lat")
    assert "cus" in text and "lat" in text
    assert "0.5" in text and "0.25" in text
    with pytest.raises(ValueError):
        format_series([1], [1, 2])


def test_ascii_curve_scales_bars():
    text = ascii_curve([1, 2], [1.0, 2.0], width=10, label="curve")
    lines = text.splitlines()
    assert lines[0] == "curve"
    assert lines[2].count("#") == 10
    assert lines[1].count("#") == 5


def test_ascii_curve_empty_and_zero():
    assert ascii_curve([], [], label="x") == "x"
    text = ascii_curve([1], [0.0])
    assert "#" not in text
