"""Tests for the profiling cache layer (server/profiles.py)."""

import json

from repro.server import profiles
from repro.server.profiles import (
    combined_database,
    model_database,
    model_right_size,
)


def test_cache_path_shim_is_gone():
    # Deprecated since PR 3, removed with the RunOptions consolidation:
    # the store lives in repro.exp.cache (JsonStore under cache_root()).
    assert not hasattr(profiles, "cache_path")
    assert "cache_path" not in profiles.__all__


def test_right_size_persists_to_disk(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    model_right_size.cache_clear()
    size = model_right_size("squeezenet", 32)
    assert 15 <= size <= 30
    payload = json.loads((tmp_path / "rightsize.json").read_text())
    assert any("squeezenet" in key for key in payload)
    # A fresh in-process cache hits the disk entry (no re-profiling):
    # corrupt the stored value and confirm it is trusted.
    key = next(iter(payload))
    payload[key] = 59
    (tmp_path / "rightsize.json").write_text(json.dumps(payload))
    model_right_size.cache_clear()
    assert model_right_size("squeezenet", 32) == 59
    model_right_size.cache_clear()


def test_corrupt_cache_file_is_ignored(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    (tmp_path / "rightsize.json").write_text("{not json")
    model_right_size.cache_clear()
    size = model_right_size("squeezenet", 32)
    assert 15 <= size <= 30
    model_right_size.cache_clear()


def test_model_database_covers_trace_and_memoizes():
    db1 = model_database("squeezenet", 32)
    db2 = model_database("squeezenet", 32)
    assert db1 is db2
    assert len(db1) > 5


def test_combined_database_merges_models():
    merged = combined_database(("squeezenet", "shufflenet"), 32)
    assert len(merged) >= len(model_database("squeezenet", 32))
    from repro.models.zoo import get_model
    for desc in get_model("shufflenet").trace(32):
        assert merged.lookup(desc) is not None
