"""Tests for the RunOptions consolidation and its deprecation shims."""

import dataclasses

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.server.experiment import ExperimentConfig, run_experiment
from repro.server.options import (
    RunOptions,
    reject_unsupported,
    resolve_run_options,
)
from repro.server.rate_experiment import run_rate_experiment
from repro.server.slo import SloGuard


def _config():
    return ExperimentConfig(model_names=("squeezenet",),
                            requests_scale=0.25)


def test_run_options_is_frozen_and_replaceable():
    options = RunOptions()
    with pytest.raises(dataclasses.FrozenInstanceError):
        options.guard = SloGuard()
    derived = options.replace(guard=SloGuard())
    assert derived.guard is not None and options.guard is None
    with pytest.raises(ValueError, match="sample_interval"):
        RunOptions(sample_interval=0.0)


def test_resolve_run_options_defaults():
    assert resolve_run_options("caller", None) == RunOptions()
    options = RunOptions(guard=SloGuard())
    assert resolve_run_options("caller", options) is options


def test_legacy_keywords_warn_and_match_options_path():
    guard = SloGuard()
    with pytest.warns(DeprecationWarning, match="run_experiment"):
        legacy = run_experiment(_config(), guard=guard)
    modern = run_experiment(_config(), options=RunOptions(guard=guard))
    assert legacy.total_rps == modern.total_rps
    assert legacy.workers[0].latency.p95 == modern.workers[0].latency.p95


def test_mixing_options_and_legacy_keywords_is_an_error():
    with pytest.raises(TypeError, match="options="):
        run_experiment(_config(), options=RunOptions(),
                       guard=SloGuard())


def test_rate_runner_accepts_options():
    registry = MetricsRegistry()
    result = run_rate_experiment(
        _config(), offered_rps=500.0, duration=0.5,
        options=RunOptions(metrics=registry))
    assert result.achieved_rps > 0
    assert len(registry) > 0


def test_rate_runner_legacy_metrics_warns():
    with pytest.warns(DeprecationWarning, match="run_rate_experiment"):
        run_rate_experiment(_config(), offered_rps=500.0, duration=0.5,
                            metrics=MetricsRegistry())


def test_reject_unsupported_names_the_field():
    with pytest.raises(ValueError, match="workload"):
        reject_unsupported("caller", RunOptions(workload=object()),
                           "workload")
    # Default-valued fields never trip the rejection.
    reject_unsupported("caller", RunOptions(), "workload", "audit")


def test_closed_loop_runner_rejects_workload():
    with pytest.raises(ValueError, match="workload"):
        run_experiment(_config(),
                       options=RunOptions(workload=object()))
