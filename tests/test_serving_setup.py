"""Tests for the shared ServingSetup builder (repro.server.setup).

The refactor's contract: extracting the harness wiring into one builder
changed *nothing* observable — fault-free results are bit-identical to
the pre-builder harness (pinned via the cell's stable cache key and
strict run-to-run equality), and both harnesses now accept the same
observability keyword surface.
"""

from repro.exp.cache import cache_key, result_hash, result_to_dict
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.server.experiment import (
    ExperimentConfig,
    measurement_window,
    run_experiment,
)
from repro.server.rate_experiment import run_rate_experiment
from repro.server.options import RunOptions
from repro.server.setup import ServingSetup

FAST = ExperimentConfig(("squeezenet",) * 2, policy="krisp-i",
                        batch_size=4, requests_scale=0.25)

#: Key of the fig13a pin cell under the seed constants.  The refactor
#: must not move fault-free cells to new cache addresses — a change here
#: invalidates every previously cached result.
FIG13A = ExperimentConfig(("squeezenet",) * 2, policy="krisp-i",
                          batch_size=32, seed=0, requests_scale=0.5)
FIG13A_KEY = "a0b294025055a22ab3ac059aab1a18bd43d622b614cfbc23f37b96a86cdaa9ca"

#: Content hash of the fig13a pin cell's full result payload, captured
#: on main before the incremental-recompute refactor.  Both recompute
#: paths must keep reproducing it float-for-float.
FIG13A_RESULT_SHA = (
    "586c866e8d4b92e20d04807e15adf3e875a658afdd5b75efc7161732ebb6ee5f")


def test_fault_free_cache_key_is_unchanged():
    assert cache_key(FIG13A) == FIG13A_KEY


def test_fig13a_result_hash_pin_incremental(monkeypatch):
    monkeypatch.delenv("REPRO_FULL_RECOMPUTE", raising=False)
    assert result_hash(run_experiment(FIG13A)) == FIG13A_RESULT_SHA


def test_fig13a_result_hash_pin_full_recompute(monkeypatch):
    monkeypatch.setenv("REPRO_FULL_RECOMPUTE", "1")
    assert result_hash(run_experiment(FIG13A)) == FIG13A_RESULT_SHA


def test_builder_harness_is_run_to_run_identical(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    a = run_experiment(FAST)
    b = run_experiment(FAST)
    assert result_to_dict(a) == result_to_dict(b)
    # Fault-free payloads stay schema-2 shaped: no resilience block.
    assert a.resilience is None
    assert "resilience" not in result_to_dict(a)


def test_build_replicates_historical_wiring(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    setup = ServingSetup.build(
        FAST, rng_label=f"{'-'.join(FAST.model_names)}/{FAST.policy}"
                        f"/{FAST.batch_size}")
    assert len(setup.plans) == len(FAST.model_names)
    assert len(setup.streams) == len(setup.plans)
    assert setup.guard is None and not setup.queues and not setup.workers

    _, end = measurement_window(FAST)
    for i in range(len(setup.plans)):
        setup.add_closed_loop_worker(i, stop_time=end)
    assert [w.name for w in setup.workers] == ["worker-0", "worker-1"]
    assert [q.name for q in setup.queues] == ["q0", "q1"]
    setup.sim.run(until=end)
    assert all(w.stats.completed for w in setup.workers)


def test_open_loop_shares_one_queue(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    setup = ServingSetup.build(FAST, rng_label="rate/100.0")
    setup.add_open_loop(100.0, stop_time=0.5)
    assert len(setup.queues) == 1
    assert len(setup.workers) == len(FAST.model_names)
    assert all(w.queue is setup.queues[0] for w in setup.workers)


def test_rate_experiment_accepts_observability_kwargs(monkeypatch, tmp_path):
    """``run_rate_experiment`` takes the same tracer/metrics/
    sample_interval keywords as ``run_experiment`` (API alignment)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    tracer = Tracer()
    metrics = MetricsRegistry()
    result = run_rate_experiment(
        FAST, offered_rps=100.0, duration=0.5,
        options=RunOptions(tracer=tracer, metrics=metrics,
                           sample_interval=1e-3))
    assert result.achieved_rps > 0
    assert tracer.requests_traced > 0
    assert len(metrics) > 0

    plain = run_rate_experiment(FAST, offered_rps=100.0, duration=0.5)
    traced = run_rate_experiment(
        FAST, offered_rps=100.0, duration=0.5,
        options=RunOptions(tracer=Tracer(), metrics=MetricsRegistry()))
    # Observability is pure observation: results are unchanged by it.
    assert traced.achieved_rps == plain.achieved_rps
    assert traced.latency == plain.latency
    assert traced.queue_residue == plain.queue_residue
