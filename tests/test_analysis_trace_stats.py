"""Tests for the chrome-trace exporter and repeated-seed statistics."""

import json

import pytest

from repro.analysis.stats import repeat_experiment, summarize
from repro.analysis.trace_export import export_chrome_trace, trace_events
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.exec_model import ExecutionModelConfig
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.topology import GpuTopology
from repro.server.experiment import ExperimentConfig
from repro.sim.engine import Simulator

TOPO = GpuTopology.mi50()


def traced_device():
    sim = Simulator()
    device = GpuDevice(sim, TOPO,
                       exec_config=ExecutionModelConfig(launch_overhead=0.0),
                       record_trace=True)
    desc = KernelDescriptor(name="gemm", workgroups=30, occupancy=1,
                            wg_duration=1e-4, mem_intensity=0.0)
    device.launch(KernelLaunch(desc, requested_cus=30, tag="w0"),
                  CUMask.first_n(TOPO, 30))
    device.launch(KernelLaunch(desc, tag="w1"),
                  CUMask.from_cus(TOPO, range(30, 60)))
    sim.run()
    return device


def test_trace_events_structure():
    device = traced_device()
    events = trace_events(device.trace)
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert {m["args"]["name"] for m in meta} == {"w0", "w1"}
    assert len(spans) == 2
    span = spans[0]
    assert span["name"] == "gemm"
    assert span["dur"] > 0
    assert span["args"]["cus"] == 30


def test_export_chrome_trace_round_trip(tmp_path):
    device = traced_device()
    path = tmp_path / "trace.json"
    count = export_chrome_trace(device.trace, path)
    payload = json.loads(path.read_text())
    assert len(payload["traceEvents"]) == count == 4


def test_unfinished_records_skipped():
    sim = Simulator()
    device = GpuDevice(sim, TOPO, record_trace=True)
    desc = KernelDescriptor(name="k", workgroups=10, wg_duration=1.0)
    device.launch(KernelLaunch(desc), CUMask.all_cus(TOPO))
    # Do not run the simulator: the kernel never finishes.
    spans = [e for e in trace_events(device.trace) if e["ph"] == "X"]
    assert spans == []


# -- stats --------------------------------------------------------------------

def test_summarize_basic():
    summary = summarize([1.0, 2.0, 3.0])
    assert summary.mean == pytest.approx(2.0)
    assert summary.samples == 3
    assert summary.ci_low < 2.0 < summary.ci_high
    assert summary.ci_halfwidth > 0


def test_summarize_single_sample():
    summary = summarize([5.0])
    assert summary.mean == 5.0
    assert summary.ci_halfwidth == 0.0


def test_summarize_validation():
    with pytest.raises(ValueError):
        summarize([])
    with pytest.raises(ValueError):
        summarize([1.0], confidence=1.5)


def test_repeat_experiment_over_seeds():
    summary = repeat_experiment(
        ExperimentConfig(("squeezenet",), requests_scale=0.5),
        metric=lambda r: r.workers[0].latency.mean,
        seeds=(0, 1, 2),
    )
    assert summary.samples == 3
    assert summary.stddev > 0  # host jitter differs across seeds
    assert summary.ci_low < summary.mean < summary.ci_high


def test_repeat_experiment_needs_seeds():
    with pytest.raises(ValueError):
        repeat_experiment(ExperimentConfig(("squeezenet",)),
                          metric=lambda r: r.total_rps, seeds=())
