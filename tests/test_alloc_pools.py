"""Pooled/contention-aware allocation policies (repro.core.pools).

Three contracts under test:

* **Lawfulness** — every pool-served mask satisfies the MaskLawChecker
  laws L1-L4 at the original request, across randomized churn, overlap
  limits, and the contention-biased path, with the counters audit clean
  throughout (:func:`run_pool_program` folds both in).
* **Bit-identity of the default path** — ``allocation="krisp"`` is
  byte-identical to the pre-policy code: the maskgen churn digest, the
  fig13a cache key, and the legacy cache-key payload are all pinned.
* **Policy mechanics** — pool-entry shape, the interference model, the
  predictive right-sizer's shrink rules, and the device's pool-switch
  ledger.
"""

import pytest

from repro.bench.scenarios import _churn_masks
from repro.check.invariants import run_pool_program
from repro.core.allocation import (
    DistributionPolicy,
    ResourceMaskGenerator,
    se_distribution,
)
from repro.core.perfdb import PerfDatabase
from repro.core.pools import (
    ALLOCATION_POLICIES,
    SIZING_POLICIES,
    PooledMaskAllocator,
    PredictiveRightSizer,
    default_size_classes,
    interference_slowdown,
)
from repro.core.rightsizing import KernelRightSizer
from repro.exp.cache import cache_key, config_to_dict, result_hash
from repro.gpu.counters import CUKernelCounters
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.topology import GpuTopology
from repro.server.experiment import ExperimentConfig, run_experiment
from repro.sim.engine import Simulator

TOPO = GpuTopology.mi50()

#: Digest of 2000 maskgen-churn iterations, captured on main before the
#: pooled-allocation layer landed.  ``allocation="krisp"`` must keep the
#: Algorithm-1 float/bit sequences untouched.
PIN2000 = "c3a16b82fd1496d1805a4719cd128920c47a07ff14c514db2de97d309a38add3"

#: The fig13a pin cell and key from test_serving_setup — the policy
#: knobs must not move fault-free cells to new cache addresses.
FIG13A = ExperimentConfig(("squeezenet",) * 2, policy="krisp-i",
                          batch_size=32, seed=0, requests_scale=0.5)
FIG13A_KEY = "a0b294025055a22ab3ac059aab1a18bd43d622b614cfbc23f37b96a86cdaa9ca"

FAST = ExperimentConfig(("squeezenet",) * 2, policy="krisp-i",
                        batch_size=4, requests_scale=0.1)


# -- lawfulness under churn --------------------------------------------------
@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("overlap_limit", (None, 0, 8))
def test_pool_program_laws_hold(seed, overlap_limit):
    violations = run_pool_program(
        seed=seed, iterations=120, overlap_limit=overlap_limit,
        reshape=bool(seed % 2))
    assert violations == []


@pytest.mark.parametrize("seed", range(4))
def test_pool_program_laws_hold_under_contention(seed):
    violations = run_pool_program(seed=seed, iterations=120,
                                  contention=True)
    assert violations == []


def test_pool_program_distributed_policy():
    violations = run_pool_program(
        seed=3, iterations=120, policy=DistributionPolicy.DISTRIBUTED)
    assert violations == []


def test_pool_stats_account_every_allocation():
    stats: dict = {}
    run_pool_program(seed=0, iterations=200, stats_out=stats)
    assert stats["allocations"] == 0  # generate() path, not allocate()
    assert stats["pool_hits"] + stats["fallbacks"] > 0
    assert stats["degraded"] == 0


# -- pool construction -------------------------------------------------------
def test_default_size_classes_mi50():
    assert default_size_classes(60, 15) == (2, 4, 7, 15, 30, 45, 60)


def test_pool_entries_are_class_sized_and_balanced():
    allocator = PooledMaskAllocator(ResourceMaskGenerator(TOPO))
    for cls, entries in allocator._pools.items():
        targets = sorted(se_distribution(cls, TOPO, allocator.policy))
        assert entries, f"class {cls} has an empty pool"
        for mask in entries:
            assert mask.count() == cls
            per_se = sorted(len([cu for cu in mask.cu_tuple
                                 if cu in TOPO.cus_in_se(se)])
                            for se in range(TOPO.num_se))
            # Same balanced per-SE split as Algorithm 1's distribution.
            assert per_se == targets


def test_pool_allocator_rejects_bad_knobs():
    gen = ResourceMaskGenerator(TOPO)
    with pytest.raises(ValueError):
        PooledMaskAllocator(gen, repack_budget=-1)
    with pytest.raises(ValueError):
        PooledMaskAllocator(gen, size_classes=(0, 4))
    with pytest.raises(ValueError):
        PooledMaskAllocator(gen, switch_cost_s=-1e-6)


def test_pool_selection_prefers_unloaded_entries():
    allocator = PooledMaskAllocator(ResourceMaskGenerator(TOPO))
    counters = CUKernelCounters(TOPO)
    first = allocator.generate(15, counters)
    counters.assign(first)
    second = allocator.generate(15, counters)
    # A fresh pool has >= 2 disjoint 15-CU entries: the optimizer must
    # not stack the second kernel on the loaded one.
    assert not (first.bits & second.bits)


# -- default-path bit-identity -----------------------------------------------
def test_krisp_churn_digest_is_pinned():
    run = _churn_masks(ResourceMaskGenerator(TOPO, reshape=True),
                       iterations=2000)
    assert run.result_hash == PIN2000


def test_explicit_default_policies_equal_legacy_config():
    explicit = ExperimentConfig(("squeezenet",) * 2, policy="krisp-i",
                                batch_size=32, seed=0, requests_scale=0.5,
                                allocation="krisp", sizing="static")
    assert explicit == FIG13A
    assert cache_key(explicit) == FIG13A_KEY


def test_config_to_dict_folds_default_policies():
    data = config_to_dict(FIG13A)
    assert "allocation" not in data
    assert "sizing" not in data
    pooled = config_to_dict(ExperimentConfig(
        ("squeezenet",), allocation="pooled", sizing="predictive"))
    assert pooled["allocation"] == "pooled"
    assert pooled["sizing"] == "predictive"


def test_config_rejects_unknown_policies():
    with pytest.raises(ValueError):
        ExperimentConfig(("squeezenet",), allocation="bogus")
    with pytest.raises(ValueError):
        ExperimentConfig(("squeezenet",), sizing="bogus")


def test_cli_choices_match_policy_rosters():
    from repro.cli import _ALLOCATION_CHOICES, _SIZING_CHOICES

    assert _ALLOCATION_CHOICES == ALLOCATION_POLICIES
    assert _SIZING_CHOICES == SIZING_POLICIES


# -- interference model ------------------------------------------------------
def test_interference_slowdown_under_budget_is_one():
    assert interference_slowdown(0.8, 0.5, 1.0) == 1.0
    assert interference_slowdown(0.8, 1.0, 1.0) == 1.0
    assert interference_slowdown(0.8, 2.0, 0.0) == 1.0


def test_interference_slowdown_matches_throttle_inverse():
    # 2x oversubscription at 80% memory intensity: throttle 0.2 + 0.8/2.
    assert interference_slowdown(0.8, 2.0, 1.0) == pytest.approx(1.0 / 0.6)
    # Pure compute never slows down.
    assert interference_slowdown(0.0, 10.0, 1.0) == 1.0


# -- predictive right-sizer --------------------------------------------------
class _DeviceStub:
    def __init__(self, scale=1.0, demand=0.0, budget=1.0):
        self.fault_latency_scale = scale
        self.bandwidth_demand = demand
        self.exec_config = type("C", (), {"mem_bandwidth_budget": budget})()


def _desc(mem=0.9, name="gemm"):
    return KernelDescriptor(name=name, workgroups=60, occupancy=1,
                            wg_duration=1e-3, mem_intensity=mem)


def _oracle(min_cus=40):
    db = PerfDatabase()
    db.record(_desc(), min_cus)
    return KernelRightSizer(db, TOPO)


def test_predictive_shrinks_memory_bound_kernels_over_budget():
    device = _DeviceStub(demand=2.0, budget=1.0)
    sizer = PredictiveRightSizer(_oracle(40), device)
    # share 0.5, mem 0.9: 40 * (0.1 + 0.45) = 22.
    assert sizer(_desc()) == 22
    assert sizer.adjusted == 1


def test_predictive_leaves_compute_bound_and_under_budget_alone():
    over = PredictiveRightSizer(_oracle(40), _DeviceStub(demand=2.0))
    assert over(_desc(mem=0.2)) == 40
    under = PredictiveRightSizer(_oracle(40), _DeviceStub(demand=0.5))
    assert under(_desc()) == 40
    assert over.adjusted == under.adjusted == 0


def test_predictive_skips_straggler_windows():
    device = _DeviceStub(scale=4.0, demand=2.0)
    sizer = PredictiveRightSizer(_oracle(40), device)
    assert sizer(_desc()) == 40


def test_predictive_floors_at_min_cus_and_never_grows():
    device = _DeviceStub(demand=100.0, budget=1.0)
    sizer = PredictiveRightSizer(_oracle(8), device, min_cus=4)
    assert sizer(_desc(mem=1.0)) == 4


def test_predictive_delegates_oracle_surface():
    oracle = _oracle()
    sizer = PredictiveRightSizer(oracle, _DeviceStub())
    assert sizer.database is oracle.database
    assert sizer.topology is oracle.topology
    assert sizer.fallback_cus is oracle.fallback_cus
    assert sizer.unprofiled is oracle.unprofiled
    unknown = _desc(name="unseen")
    assert sizer(unknown) == TOPO.total_cus  # fallback passes through
    assert sizer.degraded == oracle.degraded == 1


# -- pool-switch ledger ------------------------------------------------------
def test_pool_switch_ledger_audits_clean():
    device = GpuDevice(Simulator(), TOPO)
    assert device.pool_switches == 0
    device.charge_pool_switch(5e-6)
    device.charge_pool_switch(5e-6)
    assert device.pool_switches == 2
    assert device.pool_switch_cost_s == pytest.approx(1e-5)
    assert device.audit_state() == []
    with pytest.raises(ValueError):
        device.charge_pool_switch(-1e-9)


def test_pool_switch_cost_without_switches_is_a_violation():
    device = GpuDevice(Simulator(), TOPO)
    device.pool_switch_cost_s = 1e-6  # corrupt the ledger directly
    assert any("pool" in v for v in device.audit_state())


# -- end-to-end serving cells ------------------------------------------------
@pytest.mark.parametrize("allocation,sizing", [
    ("pooled", "static"),
    ("pooled-contention", "predictive"),
])
def test_policy_cells_run_and_replay_identically(allocation, sizing):
    config = ExperimentConfig(
        ("squeezenet",) * 2, policy="krisp-i", batch_size=4,
        requests_scale=0.1, allocation=allocation, sizing=sizing)
    audits: list = []
    from repro.server.options import RunOptions

    def audit(setup, injector):
        audits.append(setup.device.audit_state())

    first = run_experiment(config, RunOptions(audit=audit))
    second = run_experiment(config)
    assert result_hash(first) == result_hash(second)
    assert audits == [[]]
    assert first.total_rps > 0


def test_pooled_cell_differs_from_krisp_cell():
    krisp = run_experiment(FAST)
    pooled = run_experiment(
        ExperimentConfig(("squeezenet",) * 2, policy="krisp-i",
                         batch_size=4, requests_scale=0.1,
                         allocation="pooled"))
    # Different mask placements -> different (but both valid) results.
    assert result_hash(krisp) != result_hash(pooled)
