"""Latency attribution: exact decomposition, cohorts, metrics export.

The centrepiece is the hypothesis property: under random fault-churned
programs (crashes, stragglers, bandwidth spikes, storms, guard rails)
every completed flight decomposes into non-negative components that sum
*exactly* — Fraction arithmetic, zero tolerance — to its end-to-end
latency, and the tail/body cohort partition conserves every component.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.schedule import (
    BandwidthSpike,
    FaultSchedule,
    KernelStraggler,
    RequestStorm,
    WorkerCrash,
)
from repro.obs.attribution import (
    COMPONENTS,
    decompose,
    diagnose,
    exact_cohorts,
    export_attribution_metrics,
    phase_split,
    render_markdown_report,
    summarize,
)
from repro.obs.flight import FlightRecorder, KernelWindow, PhaseMark, \
    RequestFlight
from repro.obs.metrics import MetricsRegistry
from repro.server.options import RunOptions
from repro.server.experiment import ExperimentConfig, measurement_window, \
    run_experiment
from repro.server.slo import SloGuard

SMALL = ExperimentConfig(("squeezenet",) * 2, policy="krisp-i",
                         batch_size=8, seed=0, requests_scale=0.25)


# -- synthetic flights -------------------------------------------------------

def completed_flight():
    """All-dyadic synthetic flight with known component values."""
    flight = RequestFlight(index=0, model="squeezenet", batch_size=4,
                           arrival_time=0.0)
    flight.queue = "shared"
    flight.enqueues = [(0.0, "shared")]
    flight.dequeues = [(0.25, "worker-0")]
    flight.phases = [PhaseMark("host_pre", 0.25, 0.5),
                     PhaseMark("burst", 0.5, 1.0),
                     PhaseMark("host_post", 1.0, 1.25)]
    flight.kernels = [KernelWindow("conv1", 0.5, 0.875, floor=0.25,
                                   attempt=1)]
    flight.attempts = 1
    flight.completion_time = 1.25
    return flight


def shed_flight():
    flight = RequestFlight(index=1, model="squeezenet", batch_size=4,
                           arrival_time=0.5)
    flight.shed_reason = "admission"
    flight.shed_time = 0.5
    return flight


def test_decompose_known_values():
    parts = decompose(completed_flight())
    assert parts == {
        "queue_wait": Fraction(1, 4),
        "retry_wait": Fraction(0),
        "host_pre": Fraction(1, 4),
        "gpu_ideal": Fraction(1, 4),
        "interference": Fraction(1, 8),
        "dispatch_overhead": Fraction(1, 8),
        "phase_gap": Fraction(0),
        "host_post": Fraction(1, 4),
    }
    assert sum(parts.values(), Fraction(0)) == Fraction(5, 4)


def test_decompose_rejects_phase_gap_in_tiling():
    flight = completed_flight()
    flight.phases[1] = PhaseMark("burst", 0.5625, 1.0)  # hole after pre
    with pytest.raises(ValueError):
        decompose(flight)


def test_decompose_rejects_kernels_exceeding_burst():
    flight = completed_flight()
    flight.kernels = [KernelWindow("conv1", 0.5, 1.25, floor=0.25,
                                   attempt=1)]
    with pytest.raises(ValueError):
        decompose(flight)


def test_gpu_ideal_clamped_to_wall_at_ulp_level():
    flight = completed_flight()
    # Floor exceeds the observed wall (the device's float rounding can
    # land a window a few ulps under its floor): ideal is clamped so
    # interference stays exactly zero, never negative.
    flight.kernels = [KernelWindow("conv1", 0.5, 0.875, floor=0.5,
                                   attempt=1)]
    parts = decompose(flight)
    assert parts["gpu_ideal"] == Fraction(3, 8)
    assert parts["interference"] == 0
    assert sum(parts.values(), Fraction(0)) == Fraction(5, 4)


def test_summarize_and_markdown_on_synthetic_population():
    summary = summarize([completed_flight(), shed_flight()])
    assert summary["requests"] == 1
    assert summary["shed"] == {"total": 1, "by_reason": {"admission": 1}}
    assert summary["per_queue"].keys() == {"shared"}
    assert summary["diagnosis"] in {"queueing-dominated",
                                    "contention-dominated",
                                    "service-dominated"}
    shares = summary["population"]["shares"]
    assert shares["queue_wait"] == pytest.approx(0.2)
    markdown = render_markdown_report({"attribution": summary})
    assert "queue_wait" in markdown and "tail" in markdown


def test_diagnose_empty_population():
    assert diagnose([]) == "no-traffic"


# -- golden Prometheus export ------------------------------------------------

def test_attribution_metrics_golden_prometheus(tmp_path):
    registry = MetricsRegistry()
    exported = export_attribution_metrics(
        [completed_flight(), shed_flight()], registry)
    assert exported == 1
    from pathlib import Path
    golden = Path(__file__).parent / "data" / "attribution_golden.prom"
    assert registry.to_prometheus() == golden.read_text()


# -- LLM prefill/decode split ------------------------------------------------

def test_phase_split_partitions_kernel_wall_time():
    from repro.models.zoo import get_model

    model = get_model("llm-tiny")
    prefill = frozenset(k.name for k in model.prefill)
    decode = frozenset(k.name for k in model.decode)
    flight = completed_flight()
    some_prefill = next(iter(sorted(prefill)))
    some_decode = next(iter(sorted(decode)))
    flight.kernels = [
        KernelWindow(some_prefill, 0.5, 0.625, floor=0.125, attempt=1),
        KernelWindow(some_decode, 0.625, 0.8125, floor=0.125, attempt=1),
        KernelWindow("not-an-llm-kernel", 0.8125, 0.875, floor=0.0625,
                     attempt=1),
    ]
    split = phase_split(flight, prefill, decode)
    assert split["prefill"] == Fraction(1, 8)
    assert split["decode"] == Fraction(3, 16)
    assert split["other"] == Fraction(1, 16)
    wall = sum((Fraction(k.end) - Fraction(k.start)
                for k in flight.kernels), Fraction(0))
    assert sum(split.values(), Fraction(0)) == wall


def test_summarize_reports_llm_phase_split():
    from repro.workload import HomogeneousWorkloadSpec, PoissonArrivals
    from repro.server.rate_experiment import run_rate_experiment

    config = ExperimentConfig(("llm-tiny",) * 2, policy="krisp-i",
                              batch_size=1, seed=0)
    spec = HomogeneousWorkloadSpec(
        "llm-tiny", PoissonArrivals(rate=40.0), batch_size=1)
    recorder = FlightRecorder()
    run_rate_experiment(config, 40.0, 0.5,
                        RunOptions(workload=spec, recorder=recorder))
    summary = summarize(recorder.flights())
    assert summary["requests"] > 0
    split = summary["llm_phase_split"]["llm-tiny"]["population"]
    assert split["prefill"] > 0 and split["decode"] > 0


# -- property: conservation under fault churn --------------------------------

fault_plan = st.fixed_dictionaries({
    "crash_worker": st.integers(min_value=0, max_value=1),
    "crash_at": st.floats(min_value=0.1, max_value=0.9),
    "crashes": st.integers(min_value=0, max_value=2),
    "straggler": st.booleans(),
    "multiplier": st.floats(min_value=1.5, max_value=8.0),
    "spike": st.booleans(),
    "storm": st.integers(min_value=0, max_value=12),
    "admission": st.one_of(st.none(),
                           st.integers(min_value=2, max_value=16)),
    "deadline_ms": st.one_of(st.none(),
                             st.floats(min_value=20.0, max_value=400.0)),
    "retries": st.integers(min_value=1, max_value=3),
})


@settings(max_examples=10, deadline=None)
@given(fault_plan)
def test_components_nonnegative_and_sum_exactly_under_fault_churn(plan):
    warmup, end = measurement_window(SMALL)
    events = []
    for i in range(plan["crashes"]):
        events.append(WorkerCrash(
            time=warmup + plan["crash_at"] * (end - warmup) * (i + 1) / 3,
            worker=plan["crash_worker"]))
    if plan["straggler"]:
        events.append(KernelStraggler(
            start=warmup, duration=(end - warmup) / 2,
            multiplier=plan["multiplier"]))
    if plan["spike"]:
        events.append(BandwidthSpike(
            start=warmup, duration=(end - warmup) / 3, demand=1.0))
    if plan["storm"]:
        events.append(RequestStorm(
            start=warmup, duration=(end - warmup) / 4,
            count=plan["storm"]))
    faults = FaultSchedule(events=tuple(events)) if events else None
    guard = None
    if (plan["admission"] is not None or plan["deadline_ms"] is not None
            or events):
        guard = SloGuard(
            admission_depth=plan["admission"],
            deadline=(plan["deadline_ms"] * 1e-3
                      if plan["deadline_ms"] is not None else None),
            max_retries=plan["retries"], retry_backoff=1e-3)

    recorder = FlightRecorder()
    run_experiment(SMALL, RunOptions(recorder=recorder, faults=faults,
                                     guard=guard))

    decomposed = []
    for flight in recorder.completed_flights():
        parts = decompose(flight)
        assert set(parts) == set(COMPONENTS)
        for name, value in parts.items():
            assert value >= 0, (flight.index, name, float(value))
        latency = (Fraction(flight.completion_time)
                   - Fraction(flight.arrival_time))
        assert sum(parts.values(), Fraction(0)) == latency, flight.index
        decomposed.append((flight, parts))

    # Cohort conservation: body + tail partition the population exactly.
    if decomposed:
        cohorts = exact_cohorts(decomposed)
        assert len(cohorts["body"]) + len(cohorts["tail"]) == len(decomposed)
        for name in COMPONENTS:
            body = sum((p[name] for _f, p in cohorts["body"]), Fraction(0))
            tail = sum((p[name] for _f, p in cohorts["tail"]), Fraction(0))
            total = sum((p[name] for _f, p in decomposed), Fraction(0))
            assert body + tail == total
