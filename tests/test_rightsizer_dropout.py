"""Right-sizer recovery from perf-DB dropout windows.

The bug class: the right-sizer memoised fallback (degraded) answers in
the same cache as real database hits, so once a chaos dropout emptied
the database, the stale full-device answer could shadow a recovered
entry after the outage ended.  Fallback answers now live in their own
generation-invalidated memo whose replays keep the miss accounting
(``lookups``/``misses``/``degraded``) identical to an unmemoised
lookup — so memoisation is observationally invisible, and a restore
(generation bump) brings the database answer back.
"""

import pytest

from repro.core.perfdb import PerfDatabase
from repro.core.rightsizing import KernelRightSizer
from repro.faults.schedule import FaultSchedule, PerfDbDropout
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.topology import GpuTopology
from repro.server.experiment import (
    ExperimentConfig,
    measurement_window,
    run_experiment,
)
from repro.server.options import RunOptions
from repro.server.slo import SloGuard

TOPO = GpuTopology.mi50()


def _desc(name="gemm"):
    return KernelDescriptor(name=name, workgroups=60, occupancy=1,
                            wg_duration=1e-3)


def _db(*names, min_cus=20):
    db = PerfDatabase()
    for name in names:
        db.record(_desc(name), min_cus)
    return db


# -- take/restore primitives -------------------------------------------------
def test_take_fraction_returns_the_dropped_entries():
    db = _db("a", "b", "c", "d")
    gen = db.generation
    taken = db.take_fraction(0.5)
    assert len(taken) == 2
    assert len(db) == 2
    assert db.generation == gen + 1
    # drop_fraction is take_fraction's count, same victims.
    twin = _db("a", "b", "c", "d")
    assert twin.drop_fraction(0.5) == 2
    assert dict(twin.entries()).keys() == dict(db.entries()).keys()


def test_restore_reinstates_and_bumps_generation():
    db = _db("a", "b", "c", "d")
    taken = db.take_fraction(1.0)
    assert len(db) == 0
    gen = db.generation
    db.restore(taken)
    assert len(db) == 4
    assert db.generation == gen + 1
    db.restore({})  # no-op: no phantom invalidation
    assert db.generation == gen + 1


# -- the fallback-memo regression --------------------------------------------
def test_fallback_memo_is_observationally_invisible():
    db = _db("gemm")
    sizer = KernelRightSizer(db, TOPO)
    assert sizer(_desc()) == 20

    db.take_fraction(1.0)  # the dropout
    first = sizer(_desc())
    assert first == TOPO.total_cus
    lookups, misses, degraded = db.lookups, db.misses, sizer.degraded
    # Memoised fallback replay: identical answer AND identical
    # accounting deltas to a real miss (this is what feeds the chaos
    # result hashes through ResilienceStats.degraded).
    second = sizer(_desc())
    assert second == first
    assert (db.lookups, db.misses, sizer.degraded) == (
        lookups + 1, misses + 1, degraded + 1)


def test_rightsizer_recovers_database_answer_after_restore():
    db = _db("gemm")
    sizer = KernelRightSizer(db, TOPO)
    assert sizer(_desc()) == 20
    taken = db.take_fraction(1.0)
    assert sizer(_desc()) == TOPO.total_cus  # degraded while dropped
    assert sizer(_desc()) == TOPO.total_cus  # memoised, still degraded
    db.restore(taken)
    # The failing-before assertion: a stale fallback memo must not
    # shadow the recovered entry once the generation moves.
    assert sizer(_desc()) == 20


def test_fallback_cus_path_memoises_separately_too():
    db = _db()
    sizer = KernelRightSizer(db, TOPO, fallback_cus=12)
    assert sizer(_desc()) == 12
    assert sizer(_desc()) == 12
    db.record(_desc(), 20)  # offline profiling fills the gap
    assert sizer(_desc()) == 20


# -- the schedule event ------------------------------------------------------
def test_dropout_duration_is_validated():
    with pytest.raises(ValueError):
        PerfDbDropout(time=0.1, duration=-0.1)


def test_permanent_dropout_serialises_as_before_duration_existed():
    schedule = FaultSchedule((PerfDbDropout(time=0.1, fraction=0.5),))
    (entry,) = schedule.to_dict()["events"]
    assert "duration" not in entry


def test_bounded_dropout_round_trips():
    schedule = FaultSchedule(
        (PerfDbDropout(time=0.1, fraction=0.5, duration=0.2),))
    (entry,) = schedule.to_dict()["events"]
    assert entry["duration"] == 0.2
    restored = FaultSchedule.from_dict(schedule.to_dict())
    assert restored.events == schedule.events


# -- end-to-end: the chaos regression ----------------------------------------
def test_bounded_dropout_restores_database_in_a_live_cell():
    config = ExperimentConfig(("squeezenet",) * 2, policy="krisp-i",
                              batch_size=4, requests_scale=0.1)
    warmup, end = measurement_window(config)
    span = end - warmup
    faults = FaultSchedule((PerfDbDropout(
        time=warmup + 0.2 * span, fraction=0.5, duration=0.3 * span),))
    sizes: dict = {}

    def audit(setup, injector):
        for stream in setup.streams:
            sizer = getattr(stream, "rightsizer", None) \
                or getattr(stream, "sizer", None)
            db = getattr(sizer, "database", None)
            if db is not None:
                sizes[id(db)] = len(db)

    result = run_experiment(config, RunOptions(
        faults=faults, guard=SloGuard(deadline=0.25, admission_depth=8),
        audit=audit))
    # The window closed before end of run: every database is whole
    # again, yet the outage itself left degraded-lookup evidence.
    assert sizes and all(size > 0 for size in sizes.values())
    assert result.resilience is not None
    assert result.resilience.degraded > 0
    assert result.resilience.faults_injected == 1


def test_permanent_dropout_stays_degraded_for_the_whole_run():
    config = ExperimentConfig(("squeezenet",) * 2, policy="krisp-i",
                              batch_size=4, requests_scale=0.1)
    warmup, end = measurement_window(config)
    bounded = FaultSchedule((PerfDbDropout(
        time=warmup + 0.2 * (end - warmup), fraction=0.5,
        duration=0.3 * (end - warmup)),))
    permanent = FaultSchedule((PerfDbDropout(
        time=warmup + 0.2 * (end - warmup), fraction=0.5),))
    guard = SloGuard(deadline=0.25, admission_depth=8)
    with_recovery = run_experiment(
        config, RunOptions(faults=bounded, guard=guard))
    without = run_experiment(
        config, RunOptions(faults=permanent, guard=guard))
    # Recovery strictly reduces degraded lookups vs the permanent loss.
    assert with_recovery.resilience.degraded \
        < without.resilience.degraded
