"""Tests for the conservation-law audit primitives (repro/check)."""

import pytest

from repro.check import (
    request_conservation,
    run_device_program,
    run_mask_program,
)
from repro.core.allocation import DistributionPolicy
from repro.server.experiment import ExperimentConfig, run_experiment
from repro.server.options import RunOptions


@pytest.mark.parametrize("policy", list(DistributionPolicy))
def test_mask_program_clean_across_policies(policy):
    assert run_mask_program(seed=11, iterations=150, policy=policy) == []


@pytest.mark.parametrize("overlap_limit,reshape",
                         [(0, True), (8, False), (None, False)])
def test_mask_program_clean_across_limits(overlap_limit, reshape):
    assert run_mask_program(seed=5, iterations=150,
                            overlap_limit=overlap_limit,
                            reshape=reshape) == []


@pytest.mark.parametrize("full_recompute", [False, True])
def test_device_program_clean_in_both_modes(full_recompute):
    assert run_device_program(seed=2, steps=100,
                              full_recompute=full_recompute) == []


def test_audit_hook_sees_clean_end_state():
    """A real run passes both the device self-audit and the
    request-conservation identity, and every worker exposes its
    in-flight request through the public property."""
    observed = []

    def audit(setup, injector):
        observed.append(setup.device.audit_state())
        observed.append(request_conservation(setup, injector))
        for worker in setup.workers:
            assert (worker.in_flight is None
                    or worker.in_flight.arrival_time >= 0)

    run_experiment(
        ExperimentConfig(("squeezenet", "shufflenet"), policy="krisp-i",
                         requests_scale=0.1, seed=4),
        options=RunOptions(audit=audit),
    )
    assert observed != [] and all(v == [] for v in observed)


class _Queue:
    def __init__(self, enqueued, pending=0):
        self.enqueued = enqueued
        self._pending = pending

    def __len__(self):
        return self._pending


class _Worker:
    def __init__(self, completed=0, shed_deadline=0, in_flight=None):
        class _Stats:
            pass

        self.stats = _Stats()
        self.stats.completed = [object()] * completed
        self.stats.shed_deadline = shed_deadline
        self.in_flight = in_flight


class _Setup:
    def __init__(self, queues, workers):
        self.queues = queues
        self.workers = workers


def test_request_conservation_reports_imbalance():
    setup = _Setup([_Queue(enqueued=5, pending=1)],
                   [_Worker(completed=2, in_flight=object())])
    violations = request_conservation(setup)
    assert len(violations) == 1
    assert "enqueued 5" in violations[0]
    # Balancing the ledger clears the violation.
    setup.queues[0].enqueued = 4
    assert request_conservation(setup) == []


def test_request_conservation_counts_injector_retries():
    class _Injector:
        retried = 2
        shed_retries = 1

    setup = _Setup([_Queue(enqueued=7)], [_Worker(completed=4)])
    assert request_conservation(setup, _Injector()) == []
    assert request_conservation(setup) != []
