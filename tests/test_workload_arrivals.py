"""Property tests for the arrival-process layer (repro.workload.arrivals).

The traffic layer is the foundation every load curve stands on, so its
contract is pinned by properties rather than examples: gaps are always
non-negative and finite, identical seeds give byte-identical streams,
empirical rates converge to the configured ones, and a trace replay
reproduces its input timestamps exactly.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.request import RequestQueue
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.workload import (
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
    TraceArrivals,
    TraceEntry,
    TraceWorkloadSpec,
    WorkloadClient,
    arrival_from_dict,
    arrival_to_dict,
)

rates = st.floats(min_value=0.5, max_value=500.0,
                  allow_nan=False, allow_infinity=False)
durations = st.floats(min_value=0.01, max_value=5.0,
                      allow_nan=False, allow_infinity=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _rng(seed, name="arrivals"):
    return RngRegistry(seed).fork("test").stream(name)


def _take_times(process, seed, n):
    """First ``n`` arrival times (cumulative gaps) of ``process``."""
    gaps = process.gaps(_rng(seed))
    now, times = 0.0, []
    for _ in range(n):
        now += next(gaps)
        times.append(now)
    return times


ALL_PROCESSES = [
    PoissonArrivals(rate=40.0),
    OnOffArrivals(on_rate=80.0, on_duration=0.2, off_duration=0.1,
                  off_rate=5.0),
    DiurnalArrivals(base_rate=30.0, amplitude=0.5, period=1.0),
    TraceArrivals(times=(0.0, 0.1, 0.15, 0.4, 1.0)),
]


# -- universal properties ----------------------------------------------------

@pytest.mark.parametrize("process", ALL_PROCESSES,
                         ids=lambda p: type(p).__name__)
def test_gaps_are_nonnegative_and_finite(process):
    gaps = process.gaps(_rng(1))
    for _ in range(200):
        try:
            gap = next(gaps)
        except StopIteration:  # traces are finite
            break
        assert gap >= 0.0
        assert math.isfinite(gap)


@pytest.mark.parametrize("process", ALL_PROCESSES,
                         ids=lambda p: type(p).__name__)
def test_arrival_times_are_sorted(process):
    times = _take_times(process, seed=2, n=min(200, 5))
    assert times == sorted(times)


@given(seed=seeds, rate=rates)
@settings(max_examples=25, deadline=None)
def test_identical_seeds_give_identical_streams(seed, rate):
    a = _take_times(PoissonArrivals(rate=rate), seed, 50)
    b = _take_times(PoissonArrivals(rate=rate), seed, 50)
    assert a == b  # byte-identical floats, not approx


@pytest.mark.parametrize("process", ALL_PROCESSES[:3],
                         ids=lambda p: type(p).__name__)
def test_different_seeds_give_different_streams(process):
    assert _take_times(process, 1, 20) != _take_times(process, 2, 20)


@pytest.mark.parametrize("process", ALL_PROCESSES,
                         ids=lambda p: type(p).__name__)
def test_serialization_round_trip(process):
    assert arrival_from_dict(arrival_to_dict(process)) == process


def test_from_dict_tolerates_unknown_keys():
    payload = arrival_to_dict(PoissonArrivals(rate=10.0))
    payload["future_field"] = "ignored"
    assert arrival_from_dict(payload) == PoissonArrivals(rate=10.0)


def test_from_dict_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown arrival-process kind"):
        arrival_from_dict({"kind": "fractal", "rate": 1.0})


# -- Poisson -----------------------------------------------------------------

def test_poisson_empirical_rate_matches_configured():
    rate = 200.0
    n = 20_000
    times = _take_times(PoissonArrivals(rate=rate), seed=0, n=n)
    empirical = n / times[-1]
    assert empirical == pytest.approx(rate, rel=0.05)


@given(rate=rates, factor=st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=25, deadline=None)
def test_poisson_scaling(rate, factor):
    scaled = PoissonArrivals(rate=rate).scaled(factor)
    assert scaled.rate == pytest.approx(rate * factor)
    assert scaled.mean_rate() == pytest.approx(rate * factor)


def test_poisson_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        PoissonArrivals(rate=0.0)


# -- ON/OFF ------------------------------------------------------------------

def test_onoff_mean_rate_is_duty_cycle_weighted():
    process = OnOffArrivals(on_rate=100.0, on_duration=0.3,
                            off_duration=0.1, off_rate=20.0)
    expected = (100.0 * 0.3 + 20.0 * 0.1) / 0.4
    assert process.mean_rate() == pytest.approx(expected)


def test_onoff_empirical_rate_matches_mean():
    process = OnOffArrivals(on_rate=400.0, on_duration=0.2,
                            off_duration=0.2, off_rate=40.0)
    horizon = 100.0  # many full periods
    gaps = process.gaps(_rng(3))
    now, count = 0.0, 0
    while True:
        now += next(gaps)
        if now > horizon:
            break
        count += 1
    assert count / horizon == pytest.approx(process.mean_rate(), rel=0.05)


def test_onoff_silent_off_phase_emits_nothing_in_off_windows():
    process = OnOffArrivals(on_rate=200.0, on_duration=0.5,
                            off_duration=0.5, off_rate=0.0)
    times = _take_times(process, seed=4, n=500)
    for t in times:
        assert (t % 1.0) <= 0.5, f"arrival at {t} inside a silent phase"


# -- diurnal -----------------------------------------------------------------

def test_diurnal_rate_at_oscillates_within_bounds():
    process = DiurnalArrivals(base_rate=50.0, amplitude=0.5, period=2.0)
    samples = [process.rate_at(t * 0.01) for t in range(400)]
    assert min(samples) == pytest.approx(25.0, rel=0.01)
    assert max(samples) == pytest.approx(75.0, rel=0.01)


def test_diurnal_empirical_rate_matches_base_over_full_periods():
    process = DiurnalArrivals(base_rate=300.0, amplitude=0.8, period=0.5)
    horizon = 50.0  # 100 full periods: the sinusoid integrates out
    gaps = process.gaps(_rng(5))
    now, count = 0.0, 0
    while True:
        now += next(gaps)
        if now > horizon:
            break
        count += 1
    assert count / horizon == pytest.approx(300.0, rel=0.05)


def test_diurnal_rejects_amplitude_outside_unit_interval():
    with pytest.raises(ValueError):
        DiurnalArrivals(base_rate=10.0, amplitude=1.5)


# -- trace -------------------------------------------------------------------

def test_trace_validates_sorted_nonnegative_times():
    with pytest.raises(ValueError):
        TraceArrivals(times=(0.2, 0.1))
    with pytest.raises(ValueError):
        TraceArrivals(times=(-1.0, 0.1))
    with pytest.raises(ValueError):
        TraceArrivals(times=())


@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=25, deadline=None)
def test_trace_gaps_reconstruct_times(raw):
    times = tuple(sorted(raw))
    process = TraceArrivals(times=times)
    gaps = list(process.gaps(_rng(0)))
    now, rebuilt = 0.0, []
    for gap in gaps:
        now += gap
        rebuilt.append(now)
    assert rebuilt == pytest.approx(list(times), abs=1e-9)


def test_trace_replay_through_client_is_exact():
    """A TraceWorkloadSpec injects at *exactly* its input timestamps —
    absolute-time scheduling, not gap re-accumulation."""
    times = (0.0, 0.013, 0.0131, 0.2, 0.45)
    spec = TraceWorkloadSpec(entries=tuple(
        TraceEntry(time=t, model="squeezenet", batch_size=4)
        for t in times))
    sim = Simulator()
    queue = RequestQueue(sim, name="shared")
    client = WorkloadClient(sim, spec, queues={"squeezenet": queue},
                            rng=RngRegistry(0).fork("t"), stop_time=1.0)
    sim.run(until=1.0)
    assert client.arrival_times == list(times)  # bit-exact
    assert client.issued == len(times)
    assert len(queue) == len(times)
