"""Tests for the check runner, its report shape, and the CLI wiring."""

import json

import pytest

from repro.check import (
    CHECK_SCHEMA,
    CheckReport,
    CheckResult,
    DEFAULT_SCENARIOS,
    available_checks,
    run_checks,
)
from repro.check.mutate import MUTATIONS
from repro.cli import main


def test_available_checks_cover_globals_and_scenarios():
    names = available_checks(include_all=True)
    for expected in ("mask-laws", "device-audit", "emulation-correction",
                     "mask-growth", "overlap-limit-law",
                     "attribution-conservation"):
        assert expected in names
    # Every scenario gets a differential replay; only the cheap cells
    # get the pool/cache/audited-run treatment.
    for scenario in DEFAULT_SCENARIOS:
        assert f"modes:{scenario}" in names
        assert f"pool:{scenario}" in names
        assert f"cache:{scenario}" in names
        assert f"invariants:{scenario}" in names
    assert "modes:dense" in names
    assert "pool:dense" not in names
    assert "modes:maskgen" in names


def test_run_checks_cheap_scope_passes(tmp_path):
    seen = []
    report = run_checks(scenarios=["maskgen"], progress=seen.append)
    assert report.ok
    assert seen == [result.name for result in report.results]
    assert "modes:maskgen" in seen
    assert not any(name.startswith(("pool:", "cache:")) for name in seen)

    payload = report.to_dict()
    assert payload["schema"] == CHECK_SCHEMA
    assert payload["ok"] is True
    assert payload["failed"] == 0
    assert payload["checks"] == len(seen)
    json.dumps(payload)  # serialisable as-is

    lines = report.summary_lines()
    assert lines[-1].endswith("0 failed, 0 violations")


def test_run_checks_rejects_unknown_scenario():
    with pytest.raises(ValueError, match="unknown scenarios"):
        run_checks(scenarios=["no-such-scenario"])


def test_report_collects_prefixed_violations():
    report = CheckReport()
    report.add(CheckResult(name="good", passed=True))
    report.add(CheckResult(name="bad", passed=False,
                           violations=("first", "second")))
    assert not report.ok
    assert report.violations == ["bad: first", "bad: second"]
    assert report.to_dict()["failed"] == 1
    assert any("FAIL" in line for line in report.summary_lines())


def test_cli_check_list(capsys):
    assert main(["check", "--list"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert "mask-laws" in out
    for mutation in MUTATIONS:
        assert f"mutate:{mutation.name}" in out


def test_cli_check_unknown_scenario_exits_2(capsys):
    assert main(["check", "--scenario", "no-such-scenario"]) == 2
    assert "unknown scenarios" in capsys.readouterr().err


def test_cli_mutate_smoke_exits_1_with_self_test_ok(tmp_path, capsys):
    out = tmp_path / "smoke.json"
    assert main(["check", "--mutate-smoke", "--json-out", str(out)]) == 1
    payload = json.loads(out.read_text())
    assert payload["schema"] == CHECK_SCHEMA
    assert payload["self_test_ok"] is True
    # Every seeded fault was caught, so every result "passed".
    assert payload["ok"] is True
    assert {r["name"] for r in payload["results"]} == {
        f"mutate:{m.name}" for m in MUTATIONS}
    assert all(r["details"]["caught"] for r in payload["results"])
