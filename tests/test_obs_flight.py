"""Flight recorder: purity (bit-identity), capture shape, composition.

The load-bearing contract is the differential one: attaching a
:class:`~repro.obs.flight.FlightRecorder` — alone or tee'd with the
Chrome tracer — must leave the experiment result *and* the tracer's
exported trace byte-identical.  The fig13a result-sha pin is asserted
with the recorder on to prove it.
"""

from fractions import Fraction

from repro.exp.cache import result_hash
from repro.obs.flight import FlightRecorder, TeeTracer, compose_tracers
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.server.experiment import ExperimentConfig, run_experiment
from repro.server.options import RunOptions

#: Same pin as tests/test_serving_setup.py / tests/test_workload_load.py.
FIG13A = ExperimentConfig(("squeezenet",) * 2, policy="krisp-i",
                          batch_size=32, seed=0, requests_scale=0.5)
FIG13A_RESULT_SHA = (
    "586c866e8d4b92e20d04807e15adf3e875a658afdd5b75efc7161732ebb6ee5f")

SMALL = ExperimentConfig(("squeezenet",) * 2, policy="krisp-i",
                         batch_size=8, seed=0, requests_scale=0.25)


# -- purity ------------------------------------------------------------------

def test_recorder_leaves_result_hash_byte_identical():
    recorder = FlightRecorder()
    recorded = run_experiment(FIG13A, RunOptions(recorder=recorder))
    assert result_hash(recorded) == FIG13A_RESULT_SHA
    assert recorder.completed_flights()


def test_tee_with_tracer_leaves_trace_bytes_identical(tmp_path):
    alone = Tracer()
    run_experiment(SMALL, RunOptions(tracer=alone))
    alone_path = tmp_path / "alone.json"
    alone.write_chrome_trace(alone_path)

    teed = Tracer()
    recorder = FlightRecorder()
    run_experiment(SMALL, RunOptions(tracer=teed, recorder=recorder))
    teed_path = tmp_path / "teed.json"
    teed.write_chrome_trace(teed_path)

    assert alone_path.read_bytes() == teed_path.read_bytes()
    assert recorder.completed_flights()


# -- capture shape -----------------------------------------------------------

def test_recorder_captures_full_flight_timeline():
    recorder = FlightRecorder()
    run_experiment(SMALL, RunOptions(recorder=recorder))
    flights = recorder.completed_flights()
    assert flights
    for flight in flights:
        assert flight.model == "squeezenet"
        assert flight.batch_size == 8
        assert flight.queue.startswith("q")
        assert flight.attempts == 1 and flight.retries == 0
        assert len(flight.enqueues) == 1 and len(flight.dequeues) == 1
        # Phases tile the service interval with bitwise-shared bounds.
        assert flight.phases[0].phase == "host_pre"
        assert flight.phases[-1].phase == "host_post"
        assert flight.phases[0].start == flight.dequeues[0][0]
        assert flight.phases[-1].end == flight.completion_time
        for left, right in zip(flight.phases, flight.phases[1:]):
            assert left.end == right.start
        # Every final-attempt kernel window sits inside some burst.
        kernels = flight.final_kernels()
        assert kernels
        bursts = [p for p in flight.phases if p.phase == "burst"]
        for kernel in kernels:
            assert any(p.start <= kernel.start and kernel.end <= p.end
                       for p in bursts)
            assert kernel.floor > 0


def test_recorder_tracks_sheds_and_retries_under_chaos():
    from repro.bench.scenarios import CHAOS_CONFIG, CHAOS_GUARD, chaos_faults

    recorder = FlightRecorder()
    plain = run_experiment(
        CHAOS_CONFIG, RunOptions(faults=chaos_faults(CHAOS_CONFIG),
                                 guard=CHAOS_GUARD))
    recorded = run_experiment(
        CHAOS_CONFIG, RunOptions(recorder=recorder,
                                 faults=chaos_faults(CHAOS_CONFIG),
                                 guard=CHAOS_GUARD))
    assert result_hash(plain) == result_hash(recorded)

    flights = recorder.flights()
    completed = recorder.completed_flights()
    shed = recorder.shed_flights()
    assert completed and shed
    # Every observed flight is disposed of at most once.
    assert not [f for f in flights if f.completed and f.shed_reason]
    assert {f.shed_reason for f in shed} <= {"admission", "deadline",
                                             "retries"}
    # Resilience accounting and the recorder agree on shed counts.
    assert len(shed) == recorded.resilience.shed
    # Exact conservation holds for every completed flight even here.
    from repro.obs.attribution import decompose
    for flight in completed:
        parts = decompose(flight)
        latency = (Fraction(flight.completion_time)
                   - Fraction(flight.arrival_time))
        assert sum(parts.values(), Fraction(0)) == latency
        assert all(value >= 0 for value in parts.values())


# -- composition -------------------------------------------------------------

def test_compose_tracers_edge_cases():
    recorder = FlightRecorder()
    tracer = Tracer()
    assert compose_tracers() is None
    assert compose_tracers(None, None) is None
    assert compose_tracers(None, recorder) is recorder
    assert compose_tracers(NULL_TRACER, recorder) is recorder
    composed = compose_tracers(tracer, recorder)
    assert isinstance(composed, TeeTracer)
    assert composed.enabled


def test_tee_tracer_fans_out_hooks():
    seen = []

    class Probe:
        enabled = True

        def bind_clock(self, clock):
            seen.append(("bind", clock))

        def queue_depth(self, name, depth):
            seen.append((name, depth))

    first, second = Probe(), Probe()
    tee = TeeTracer(first, second)
    clock = lambda: 1.0  # noqa: E731
    tee.bind_clock(clock)
    tee.queue_depth("q0", 3)
    assert seen == [("bind", clock), ("bind", clock), ("q0", 3), ("q0", 3)]
