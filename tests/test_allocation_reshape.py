"""Tests for the reshape toggle: literal Algorithm 1 vs balanced regrant."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.allocation import DistributionPolicy, ResourceMaskGenerator
from repro.gpu.counters import CUKernelCounters
from repro.gpu.cu_mask import CUMask
from repro.gpu.topology import GpuTopology

TOPO = GpuTopology.mi50()


def loaded_counters(n_first=40):
    gen = ResourceMaskGenerator(TOPO)
    counters = CUKernelCounters(TOPO)
    counters.assign(gen.generate(n_first, counters))
    return counters


def test_literal_mode_keeps_only_free_cus_plus_floor():
    gen = ResourceMaskGenerator(TOPO, overlap_limit=0, reshape=False)
    counters = loaded_counters(40)
    mask = gen.generate(40, counters)
    # 20 free CUs + floor top-up to 30, taken raggedly.
    assert mask.count() == 30


def test_literal_mode_can_produce_ragged_shapes():
    """Under partial load the literal selection leaves uneven SE shapes —
    the source of the paper's Fig. 16 spikes."""
    gen = ResourceMaskGenerator(TOPO, overlap_limit=0, reshape=False)
    counters = CUKernelCounters(TOPO)
    # Occupy 14 of 15 CUs in SE0 and SE1.
    counters.assign(CUMask.from_cus(
        TOPO, [cu for se in (0, 1) for cu in list(TOPO.cus_in_se(se))[:14]]))
    mask = gen.generate(32, counters)
    active = [c for c in mask.per_se_counts() if c > 0]
    assert max(active) - min(active) > 1  # ragged


def test_reshape_mode_always_balanced():
    gen = ResourceMaskGenerator(TOPO, overlap_limit=0, reshape=True)
    counters = CUKernelCounters(TOPO)
    counters.assign(CUMask.from_cus(
        TOPO, [cu for se in (0, 1) for cu in list(TOPO.cus_in_se(se))[:14]]))
    mask = gen.generate(32, counters)
    active = [c for c in mask.per_se_counts() if c > 0]
    assert max(active) - min(active) <= 1


@given(st.integers(min_value=1, max_value=60),
       st.integers(min_value=1, max_value=60))
def test_modes_agree_on_idle_device(n_request, n_other):
    """With nothing running, both modes produce the identical mask."""
    literal = ResourceMaskGenerator(TOPO, overlap_limit=0, reshape=False)
    balanced = ResourceMaskGenerator(TOPO, overlap_limit=0, reshape=True)
    counters = CUKernelCounters(TOPO)
    assert literal.generate(n_request, counters) == \
        balanced.generate(n_request, counters)


@given(st.integers(min_value=1, max_value=60))
def test_literal_mode_never_starves(n):
    gen = ResourceMaskGenerator(TOPO, overlap_limit=0, reshape=False)
    counters = CUKernelCounters(TOPO)
    counters.assign(CUMask.all_cus(TOPO))
    mask = gen.generate(n, counters)
    assert mask.count() >= min(n, 30)  # the fair-share floor holds
