"""Smoke tests: every shipped example must run to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py"))

#: CLI arguments keeping each example's smoke run small.
ARGS = {
    "colocation_study": ["squeezenet", "2"],
    "rate_serving": ["squeezenet"],
}


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", [str(path)] + ARGS.get(path.stem, []))
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "colocation_study", "profile_custom_model",
            "emulation_overhead", "utilization_motivation",
            "rate_serving"} <= names
