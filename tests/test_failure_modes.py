"""Failure-injection and overload tests.

These exercise the stack's guard rails: stuck dependencies, counter
overflow at extreme co-residency, runtime contention on the serialised
IOCTL path, and workers outliving their load.
"""

import pytest

from repro.gpu.aql import BarrierAndPacket, KernelDispatchPacket
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.exec_model import ExecutionModelConfig
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.queue import HsaQueue
from repro.gpu.command_processor import CommandProcessor
from repro.gpu.topology import GpuTopology
from repro.models.zoo import get_model
from repro.profiling.kernel_profiler import build_database
from repro.core.krisp import KrispConfig, KrispSystem
from repro.runtime.hsa import HsaRuntime
from repro.sim.engine import Simulator
from repro.sim.process import Signal

TOPO = GpuTopology.mi50()
CFG = ExecutionModelConfig(launch_overhead=0.0)


def kernel(name="k"):
    return KernelDescriptor(name=name, workgroups=10, wg_duration=1e-5,
                            occupancy=1, mem_intensity=0.0)


def test_stuck_barrier_stalls_queue_but_not_simulator():
    """A barrier whose dependency never fires must stall only its queue;
    the simulator drains cleanly and the stall is observable."""
    sim = Simulator()
    device = GpuDevice(sim, TOPO, exec_config=CFG)
    cp = CommandProcessor(sim, device)
    queue = HsaQueue(TOPO)
    cp.register_queue(queue)
    never = Signal(sim, "never")
    queue.submit(BarrierAndPacket(dep_signals=[never]))
    queue.submit(KernelDispatchPacket(launch=KernelLaunch(kernel())))
    sim.run()
    assert device.kernels_completed == 0
    assert len(queue) == 1  # the kernel packet is still parked
    # Firing the dependency later releases the queue.
    never.fire(None)
    sim.run()
    assert device.kernels_completed == 1


def test_counter_overflow_at_extreme_coresidency():
    """More concurrent kernels per CU than the 5-bit hardware counters
    support must fail loudly, not wrap."""
    sim = Simulator()
    device = GpuDevice(sim, TOPO, exec_config=CFG)
    mask = CUMask.first_n(TOPO, 1)
    for i in range(TOPO.max_kernels_per_cu):
        device.launch(KernelLaunch(kernel(f"k{i}")), mask)
    with pytest.raises(OverflowError):
        device.launch(KernelLaunch(kernel("overflow")), mask)


def test_ioctl_contention_between_emulated_streams():
    """Two emulated KRISP streams contend on the serialised IOCTL path,
    the high-variance effect the paper observed on real ROCm."""
    sim = Simulator()
    device = GpuDevice(sim, TOPO, exec_config=CFG)
    model = get_model("squeezenet")
    database = build_database(model.trace(32))
    system = KrispSystem(sim, device, database,
                         config=KrispConfig(overlap_limit=0))
    streams = [system.create_stream(f"w{i}", emulated=True)
               for i in range(2)]
    for stream in streams:
        for desc in model.trace(32):
            stream.launch_kernel(desc)
    sim.run()
    ioctl = system.runtime.ioctl
    assert ioctl.calls_completed == 2 * model.kernel_count
    assert ioctl.total_wait_time > 0  # someone queued behind someone


def test_worker_idles_gracefully_without_load():
    """A worker with an empty queue parks on the queue signal and the
    simulation terminates."""
    import numpy as np

    from repro.runtime.stream import Stream
    from repro.server.request import RequestQueue
    from repro.server.worker import Worker

    sim = Simulator()
    device = GpuDevice(sim, TOPO, exec_config=CFG)
    runtime = HsaRuntime(sim, device)
    queue = RequestQueue(sim)
    worker = Worker(sim, "w", Stream(runtime), [([kernel()], 0.0)],
                    queue, np.random.default_rng(0), stop_time=1.0)
    sim.run()
    assert worker.stats.requests_processed == 0


def test_device_survives_pathological_single_cu_masks():
    """Sixty kernels each pinned to a distinct single CU: full isolation,
    every kernel finishes at its own pace."""
    sim = Simulator()
    device = GpuDevice(sim, TOPO, exec_config=CFG)
    for cu in range(60):
        device.launch(KernelLaunch(kernel(f"k{cu}")),
                      CUMask.from_cus(TOPO, [cu]))
    assert device.running_count() == 60
    sim.run()
    assert device.kernels_completed == 60


def test_zero_duration_window_rejected_by_run_until():
    sim = Simulator()
    sim.run(until=0.0)
    assert sim.now == 0.0
