"""Unit and property tests for the dispatcher timing model.

These tests pin down the three first-order effects the paper's Figure 8
and Figures 4/6 rely on: latency plateaus, Packed spikes at 16/31/46
active CUs, and Distributed steps at 15/11/7.
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.cu_mask import CUMask
from repro.gpu.exec_model import (
    ExecutionModelConfig,
    bandwidth_demand,
    contended_latency,
    effective_cus_per_se,
    isolated_latency,
    memory_throttle,
    split_workgroups,
)
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.topology import GpuTopology

TOPO = GpuTopology.mi50()
CFG = ExecutionModelConfig(launch_overhead=0.0)


def make_kernel(workgroups, occupancy=1, wg_duration=1e-5, mem=0.0):
    return KernelDescriptor(
        name="k", workgroups=workgroups, occupancy=occupancy,
        wg_duration=wg_duration, mem_intensity=mem,
    )


def packed_mask(n):
    return CUMask.first_n(TOPO, n)


def distributed_mask(n):
    cus = []
    per_se = [n // TOPO.num_se] * TOPO.num_se
    for rank in range(n % TOPO.num_se):
        per_se[rank] += 1
    for se, count in enumerate(per_se):
        cus.extend(list(TOPO.cus_in_se(se))[:count])
    return CUMask.from_cus(TOPO, cus)


# -- split_workgroups ------------------------------------------------------

def test_split_equal_across_active_ses():
    assert split_workgroups(100, [15, 15, 15, 15]) == [25, 25, 25, 25]
    assert split_workgroups(100, [15, 1, 0, 0]) == [50, 50, 0, 0]
    assert split_workgroups(7, [1, 1, 1, 0]) == [3, 2, 2, 0]


def test_split_zero_workgroups():
    assert split_workgroups(0, [15, 15, 15, 15]) == [0, 0, 0, 0]


def test_split_no_active_se():
    assert split_workgroups(10, [0, 0, 0, 0]) == [0, 0, 0, 0]


@given(
    st.integers(min_value=0, max_value=100_000),
    st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=8),
)
def test_split_conserves_workgroups(wgs, per_se):
    shares = split_workgroups(wgs, per_se)
    if any(per_se):
        assert sum(shares) == wgs
        active = [s for s, c in zip(shares, per_se) if c > 0]
        assert max(active) - min(active) <= 1
    else:
        assert sum(shares) == 0
    for share, cus in zip(shares, per_se):
        if cus == 0:
            assert share == 0


# -- isolated latency -------------------------------------------------------

def test_latency_plateau_until_wave_count_changes():
    # 60 WGs, occupancy 1: on the full GPU each SE gets 15 WGs on 15 CUs ->
    # 1 wave.  Shrinking (distributed) below 15 CUs/SE raises waves.
    kernel = make_kernel(workgroups=60)
    full = isolated_latency(kernel, CUMask.all_cus(TOPO), CFG)
    assert isolated_latency(kernel, distributed_mask(60), CFG) == full
    # 16 distributed CUs -> 4 per SE, 15 WGs per SE -> 4 waves
    assert isolated_latency(kernel, distributed_mask(16), CFG) == 4 * full


def test_packed_spike_at_16_cus():
    # Packed 16 = SE0 full + 1 CU in SE1.  SE1 gets half the grid on one CU.
    kernel = make_kernel(workgroups=120)
    lat15 = isolated_latency(kernel, packed_mask(15), CFG)
    lat16 = isolated_latency(kernel, packed_mask(16), CFG)
    lat30 = isolated_latency(kernel, packed_mask(30), CFG)
    assert lat16 > lat15  # adding a CU makes it SLOWER: the Fig. 8 spike
    assert lat30 < lat16


def test_packed_spikes_at_31_and_46():
    kernel = make_kernel(workgroups=300)
    for boundary in (31, 46):
        below = isolated_latency(kernel, packed_mask(boundary - 1), CFG)
        spike = isolated_latency(kernel, packed_mask(boundary), CFG)
        assert spike > below


def test_distributed_step_at_15():
    # Distributed 15 CUs -> per-SE (4,4,4,3); the 3-CU SE bottlenecks, so
    # 15 CUs performs like 12 (the paper's "spikes at 15, 11, 7").
    kernel = make_kernel(workgroups=240)
    lat15 = isolated_latency(kernel, distributed_mask(15), CFG)
    lat12 = isolated_latency(kernel, distributed_mask(12), CFG)
    lat16 = isolated_latency(kernel, distributed_mask(16), CFG)
    assert lat15 == lat12
    assert lat16 < lat15


def test_occupancy_reduces_waves():
    k1 = make_kernel(workgroups=120, occupancy=1)
    k4 = make_kernel(workgroups=120, occupancy=4)
    full = CUMask.all_cus(TOPO)
    assert isolated_latency(k4, full, CFG) < isolated_latency(k1, full, CFG)


def test_empty_mask_rejected():
    with pytest.raises(ValueError):
        isolated_latency(make_kernel(10), CUMask.none(TOPO), CFG)


def test_launch_overhead_added():
    cfg = ExecutionModelConfig(launch_overhead=1e-6)
    kernel = make_kernel(workgroups=1)
    lat = isolated_latency(kernel, CUMask.all_cus(TOPO), cfg)
    assert lat == pytest.approx(kernel.wg_duration + 1e-6)


@given(st.integers(min_value=1, max_value=5000),
       st.integers(min_value=1, max_value=60))
def test_more_cus_never_hurts_distributed(wgs, n):
    """With balanced (conserved-style) masks, adding whole SE-balanced CUs
    never increases latency beyond quantization plateaus."""
    kernel = make_kernel(workgroups=wgs)
    full = isolated_latency(kernel, CUMask.all_cus(TOPO), CFG)
    lat = isolated_latency(kernel, distributed_mask(n), CFG)
    assert lat >= full or math.isclose(lat, full)


# -- contention -------------------------------------------------------------

def test_contended_latency_doubles_with_two_residents():
    kernel = make_kernel(workgroups=600)  # far past quantization floor
    mask = CUMask.all_cus(TOPO)
    alone = contended_latency(kernel, mask, {}, CFG)
    shared = contended_latency(
        kernel, mask, {cu: 2 for cu in range(60)}, CFG
    )
    # alpha=1.15 -> slightly worse than 2x fair share
    assert shared > 2.0 * alone
    assert shared < 3.0 * alone


def test_contended_latency_never_below_isolated_floor():
    kernel = make_kernel(workgroups=4)
    mask = CUMask.all_cus(TOPO)
    assert contended_latency(kernel, mask, {}, CFG) == isolated_latency(
        kernel, mask, CFG
    )


def test_effective_cus_fair_share_alpha_one():
    mask = CUMask.first_n(TOPO, 2)
    cap = effective_cus_per_se(mask, {0: 2, 1: 4}, alpha=1.0)
    assert cap[0] == pytest.approx(0.5 + 0.25)


# -- memory bandwidth ---------------------------------------------------------

def test_bandwidth_demand_scales_with_mask_and_intensity():
    kernel = make_kernel(10, mem=0.5)
    assert bandwidth_demand(kernel, CUMask.all_cus(TOPO)) == pytest.approx(0.5)
    assert bandwidth_demand(kernel, CUMask.first_n(TOPO, 30)) == pytest.approx(0.25)


def test_memory_throttle_no_oversubscription():
    kernel = make_kernel(10, mem=1.0)
    assert memory_throttle(kernel, 0.5, 0.9, CFG) == 1.0


def test_memory_throttle_oversubscribed():
    kernel = make_kernel(10, mem=1.0)
    factor = memory_throttle(kernel, 1.0, 2.0, CFG)
    assert factor == pytest.approx(0.5)


def test_memory_throttle_compute_bound_unaffected():
    kernel = make_kernel(10, mem=0.0)
    assert memory_throttle(kernel, 0.0, 5.0, CFG) == 1.0


def test_memory_throttle_partial_intensity():
    kernel = make_kernel(10, mem=0.5)
    factor = memory_throttle(kernel, 0.5, 2.0, CFG)
    assert factor == pytest.approx(0.5 + 0.5 * 0.5)
