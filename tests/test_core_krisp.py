"""Tests for the KRISP allocator and system facade."""

import pytest

from repro.core.allocation import DistributionPolicy, ResourceMaskGenerator
from repro.core.krisp import KrispAllocator, KrispConfig, KrispSystem
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.topology import GpuTopology
from repro.models.zoo import get_model
from repro.profiling.kernel_profiler import build_database
from repro.runtime.emulation import EmulatedKernelScopedStream
from repro.runtime.stream import Stream
from repro.sim.engine import Simulator

TOPO = GpuTopology.mi50()


def kernel(workgroups=24, requested=None):
    return KernelLaunch(
        KernelDescriptor(name="k", workgroups=workgroups, occupancy=2,
                         wg_duration=1e-4, mem_intensity=0.0),
        requested_cus=requested,
    )


def test_allocator_honours_requested_size_on_idle_device():
    sim = Simulator()
    device = GpuDevice(sim, TOPO)
    allocator = KrispAllocator(ResourceMaskGenerator(TOPO))
    mask = allocator.allocate(kernel(requested=17), device)
    assert mask.count() == 17
    assert allocator.allocations == 1
    assert allocator.short_allocations == 0


def test_allocator_defaults_unprofiled_to_full_device():
    sim = Simulator()
    device = GpuDevice(sim, TOPO)
    allocator = KrispAllocator(ResourceMaskGenerator(TOPO))
    mask = allocator.allocate(kernel(requested=None), device)
    assert mask.count() == 60


def test_allocator_counts_short_allocations():
    sim = Simulator()
    device = GpuDevice(sim, TOPO)
    allocator = KrispAllocator(
        ResourceMaskGenerator(TOPO, overlap_limit=0))
    big = allocator.allocate(kernel(requested=50), device)
    device.launch(kernel(workgroups=100), big)
    shrunk = allocator.allocate(kernel(requested=50), device)
    assert shrunk.count() < 50
    assert allocator.short_allocations == 1


def test_allocator_isolates_against_running_kernels():
    sim = Simulator()
    device = GpuDevice(sim, TOPO)
    allocator = KrispAllocator(
        ResourceMaskGenerator(TOPO, overlap_limit=0))
    first = allocator.allocate(kernel(requested=20), device)
    device.launch(kernel(workgroups=40), first)
    second = allocator.allocate(kernel(requested=20), device)
    assert first.intersect(second).is_empty()


def test_krisp_system_wires_native_and_emulated_streams():
    sim = Simulator()
    device = GpuDevice(sim, TOPO)
    model = get_model("squeezenet")
    database = build_database(model.trace(32))
    system = KrispSystem(sim, device, database)
    assert isinstance(system.create_stream("n"), Stream)
    assert isinstance(system.create_stream("e", emulated=True),
                      EmulatedKernelScopedStream)


def test_krisp_system_end_to_end_right_sizing():
    sim = Simulator()
    device = GpuDevice(sim, TOPO, record_trace=True)
    model = get_model("squeezenet")
    database = build_database(model.trace(32))
    system = KrispSystem(sim, device, database,
                         config=KrispConfig(overlap_limit=0))
    stream = system.create_stream("w")
    for desc in model.trace(32):
        stream.launch_kernel(desc)
    sim.run()
    assert device.kernels_completed == model.kernel_count
    sizes = [r.mask.count() for r in device.trace]
    # Kernel-wise right-sizing: most kernels get far less than the device.
    assert sum(1 for s in sizes if s < 30) > model.kernel_count * 0.5
    assert system.rightsizer.unprofiled == set()


def test_krisp_config_distribution_override():
    sim = Simulator()
    device = GpuDevice(sim, TOPO)
    database = build_database(get_model("squeezenet").trace(32))
    system = KrispSystem(
        sim, device, database,
        config=KrispConfig(distribution=DistributionPolicy.PACKED))
    assert system.allocator.generator.policy is DistributionPolicy.PACKED


def test_krisp_overlap_limit_flows_to_generator():
    sim = Simulator()
    device = GpuDevice(sim, TOPO)
    database = build_database(get_model("squeezenet").trace(32))
    system = KrispSystem(sim, device, database,
                         config=KrispConfig(overlap_limit=7))
    assert system.allocator.generator.overlap_limit == 7
    default = KrispSystem(sim, GpuDevice(sim, TOPO), database)
    assert default.allocator.generator.overlap_limit == 60  # unlimited
