"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_break_by_priority_then_insertion():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("late"), priority=5)
    sim.schedule(1.0, lambda: order.append("early"), priority=0)
    sim.schedule(1.0, lambda: order.append("late2"), priority=5)
    sim.run()
    assert order == ["early", "late", "late2"]


def test_schedule_in_is_relative():
    sim = Simulator()
    times = []
    sim.schedule_in(1.0, lambda: times.append(sim.now))
    sim.schedule_in(1.0, lambda: sim.schedule_in(0.5, lambda: times.append(sim.now)))
    sim.run()
    assert times == [1.0, 1.5]


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_in(-0.1, lambda: None)


def test_cancelled_events_do_not_run():
    sim = Simulator()
    ran = []
    event = sim.schedule(1.0, lambda: ran.append(1))
    event.cancel()
    sim.run()
    assert ran == []
    assert sim.events_executed == 0


def test_run_until_advances_clock_even_if_heap_drains():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=5.0)
    assert sim.now == 5.0


def test_run_until_leaves_future_events_pending():
    sim = Simulator()
    ran = []
    sim.schedule(10.0, lambda: ran.append(1))
    sim.run(until=5.0)
    assert ran == []
    assert sim.pending() == 1
    sim.run()
    assert ran == [1]


def test_stop_halts_the_loop():
    sim = Simulator()
    ran = []
    sim.schedule(1.0, sim.stop)
    sim.schedule(2.0, lambda: ran.append(1))
    sim.run()
    assert ran == []
    assert sim.now == 1.0


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_max_events_limit():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None)
    sim.run(max_events=3)
    assert sim.events_executed == 3


def test_peek_skips_cancelled():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    e1.cancel()
    assert sim.peek() == 2.0


# -- live-event accounting and heap compaction ---------------------------

def test_pending_counter_matches_heap_scan():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(50)]
    assert sim.pending() == sim._pending_scan() == 50
    for event in events[::3]:
        event.cancel()
    assert sim.pending() == sim._pending_scan()
    sim.run(max_events=10)
    assert sim.pending() == sim._pending_scan()
    # Double-cancel must not double-count.
    events[0].cancel()
    events[0].cancel()
    assert sim.pending() == sim._pending_scan()


def test_cancel_after_execution_does_not_corrupt_the_counter():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.run()
    event.cancel()
    assert sim._cancelled_in_heap == 0
    assert sim.pending() == sim._pending_scan() == 0


def test_compaction_drops_dead_entries_and_preserves_order():
    # Heap internals: pin the queue so REPRO_SIM_QUEUE=calendar runs of
    # the suite still exercise (and assert on) the binary heap.
    sim = Simulator(queue="heap")
    order = []
    events = []
    for i in range(Simulator.COMPACT_MIN + 200):
        events.append(
            sim.schedule(float(i + 1), lambda i=i: order.append(i)))
    live = []
    for i, event in enumerate(events):
        if i % 4 == 0:
            live.append(i)
        else:
            event.cancel()
    # Cancelled entries now outnumber live ones; the next schedule()
    # compacts the heap down to the survivors (plus the new event).
    sentinel = sim.schedule(1e9, lambda: order.append(-1))
    assert len(sim._heap) == len(live) + 1
    assert sim._cancelled_in_heap == 0
    assert sim.pending() == sim._pending_scan() == len(live) + 1
    sentinel.cancel()
    sim.run()
    assert order == live


def test_small_heaps_are_never_compacted():
    # Heap internals: pin the queue (see above).
    sim = Simulator(queue="heap")
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(20)]
    for event in events:
        event.cancel()
    sim.schedule(100.0, lambda: None)
    # Below COMPACT_MIN the dead entries stay (lazy deletion only).
    assert len(sim._heap) == 21
    assert sim.pending() == sim._pending_scan() == 1
