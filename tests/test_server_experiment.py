"""Integration tests for the experiment harness and policies."""

import pytest

from repro.server.experiment import (
    ExperimentConfig,
    isolated_baseline,
    normalized_rps,
    run_experiment,
    slo_target,
)
from repro.server.policies import POLICY_NAMES, WorkerPlan, get_policy
from repro.server.profiles import model_right_size

# Small, fast models keep these integration tests quick.
FAST_MODEL = "squeezenet"


def fast_config(**kwargs):
    kwargs.setdefault("model_names", (FAST_MODEL,))
    kwargs.setdefault("requests_scale", 0.5)
    return ExperimentConfig(**kwargs)


def test_isolated_baseline_sane():
    base = isolated_baseline(FAST_MODEL)
    assert base.total_rps > 0
    assert base.workers[0].latency.p95 > 0
    assert base.energy_per_request > 0
    assert 0 < base.gpu_utilization <= 1.0


def test_isolated_baseline_is_cached():
    assert isolated_baseline(FAST_MODEL) is isolated_baseline(FAST_MODEL)


def test_slo_target_is_twice_isolated_p95():
    base = isolated_baseline(FAST_MODEL)
    assert slo_target(FAST_MODEL) == pytest.approx(2.0 * base.max_p95())


def test_experiment_is_deterministic():
    config = fast_config(model_names=(FAST_MODEL,) * 2, policy="krisp-i")
    a = run_experiment(config)
    b = run_experiment(config)
    assert a.total_rps == b.total_rps
    assert a.max_p95() == b.max_p95()
    assert a.energy_joules == b.energy_joules


def test_seed_changes_jitter_not_structure():
    a = run_experiment(fast_config(seed=1))
    b = run_experiment(fast_config(seed=2))
    # Host jitter differs between seeds, but the structure does not.
    assert a.workers[0].latency.mean != b.workers[0].latency.mean
    assert a.total_rps == pytest.approx(b.total_rps, rel=0.1)
    assert a.max_p95() == pytest.approx(b.max_p95(), rel=0.1)


def test_two_workers_increase_throughput():
    one = run_experiment(fast_config())
    two = run_experiment(fast_config(model_names=(FAST_MODEL,) * 2,
                                     policy="krisp-i"))
    assert two.total_rps > 1.4 * one.total_rps


def test_all_policies_run_mixed_pair():
    for policy in POLICY_NAMES:
        result = run_experiment(fast_config(
            model_names=("squeezenet", "shufflenet"), policy=policy))
        assert len(result.workers) == 2
        assert {w.model_name for w in result.workers} == {
            "squeezenet", "shufflenet"}
        assert result.total_rps > 0


def test_normalized_rps_isolated_is_one():
    base = isolated_baseline(FAST_MODEL)
    assert normalized_rps(base) == pytest.approx(1.0)


def test_emulated_krisp_runs_slower_per_request():
    native = run_experiment(fast_config(policy="krisp-i"))
    emulated = run_experiment(fast_config(policy="krisp-i", emulated=True))
    assert emulated.workers[0].latency.mean > native.workers[0].latency.mean


def test_overlap_limit_override():
    result = run_experiment(fast_config(
        model_names=(FAST_MODEL,) * 2, policy="krisp-o", overlap_limit=15))
    assert result.total_rps > 0


def test_config_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(model_names=())
    with pytest.raises(ValueError):
        ExperimentConfig(model_names=("albert",), batch_size=0)
    with pytest.raises(ValueError):
        ExperimentConfig(model_names=("albert",), requests_scale=0)
    with pytest.raises(KeyError):
        run_experiment(fast_config(policy="does-not-exist"))


def test_exec_config_overrides():
    config = fast_config(intra_cu_alpha=1.3, mem_bandwidth_budget=2.0)
    exec_config = config.exec_config()
    assert exec_config.intra_cu_alpha == 1.3
    assert exec_config.mem_bandwidth_budget == 2.0
    default = fast_config().exec_config()
    assert default.intra_cu_alpha == 1.15


# -- policies -----------------------------------------------------------------

def test_static_equal_partitions_are_disjoint_and_equal():
    from repro.gpu.device import GpuDevice
    from repro.models.zoo import get_model
    from repro.sim.engine import Simulator

    sim = Simulator()
    device = GpuDevice(sim)
    policy = get_policy("static-equal")
    plans = [WorkerPlan(get_model(FAST_MODEL))] * 4
    streams = policy.setup(sim, device, plans)
    masks = [s.queue.cu_mask for s in streams]
    assert all(m.count() == 15 for m in masks)
    for i, a in enumerate(masks):
        for b in masks[i + 1:]:
            assert a.intersect(b).is_empty()


def test_model_rightsize_masks_match_profiles():
    from repro.gpu.device import GpuDevice
    from repro.models.zoo import get_model
    from repro.sim.engine import Simulator

    sim = Simulator()
    device = GpuDevice(sim)
    policy = get_policy("model-rightsize")
    plans = [WorkerPlan(get_model(FAST_MODEL)),
             WorkerPlan(get_model("shufflenet"))]
    streams = policy.setup(sim, device, plans)
    assert streams[0].queue.cu_mask.count() == model_right_size(FAST_MODEL, 32)
    assert streams[1].queue.cu_mask.count() == model_right_size("shufflenet", 32)
    # Both kneepoints fit on the device: no overlap.
    assert streams[0].queue.cu_mask.intersect(
        streams[1].queue.cu_mask).is_empty()


def test_mps_default_shares_everything():
    from repro.gpu.device import GpuDevice
    from repro.models.zoo import get_model
    from repro.sim.engine import Simulator

    sim = Simulator()
    device = GpuDevice(sim)
    streams = get_policy("mps-default").setup(
        sim, device, [WorkerPlan(get_model(FAST_MODEL))] * 2)
    assert all(s.queue.cu_mask.count() == 60 for s in streams)


def test_unknown_policy_rejected():
    with pytest.raises(KeyError):
        get_policy("fair-scheduler")
