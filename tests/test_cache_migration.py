"""Legacy-entry migration races in ``locate_entry`` (repro.exp.cache).

The bug class: two readers (pooled sweep workers) touch the same flat
legacy cache file at once.  The first ``os.replace`` wins; the loser's
rename raises because the source vanished, and the old code could then
report a miss — or crash — for an entry that exists on disk.  The fix
makes migrate-on-read idempotent under races (serve the winner's
sharded file), falls back to an atomic copy when rename itself is
impossible (EXDEV/EACCES), and never returns a path that misses.
"""

import errno
import os
from concurrent.futures import ThreadPoolExecutor

from repro.exp.cache import locate_entry, sharded_entry_path

KEY = "ab" + "0" * 62
BODY = '{"entry": 1}'


def _legacy(tmp_path, key=KEY, body=BODY):
    path = tmp_path / f"{key}.json"
    path.write_text(body)
    return path


def test_migrates_legacy_to_shard_and_is_idempotent(tmp_path):
    legacy = _legacy(tmp_path)
    sharded = sharded_entry_path(tmp_path, KEY)
    first = locate_entry(tmp_path, KEY)
    assert first == sharded
    assert first.read_text() == BODY
    assert not legacy.exists()
    # Second touch: already sharded, nothing to migrate.
    assert locate_entry(tmp_path, KEY) == sharded
    assert sharded.read_text() == BODY


def test_missing_key_resolves_to_canonical_shard(tmp_path):
    sharded = sharded_entry_path(tmp_path, KEY)
    assert locate_entry(tmp_path, KEY) == sharded
    assert not sharded.exists()


def test_lost_race_serves_the_winners_file(tmp_path, monkeypatch):
    # Simulate losing the migrate race: the "winner" completes the real
    # rename, then our own replace call observes the vanished source.
    _legacy(tmp_path)
    real_replace = os.replace

    def racing_replace(src, dst, **kwargs):
        real_replace(src, dst, **kwargs)  # the winner's move
        raise FileNotFoundError(errno.ENOENT, "lost the race", str(src))

    monkeypatch.setattr("repro.exp.cache.os.replace", racing_replace)
    found = locate_entry(tmp_path, KEY)
    assert found == sharded_entry_path(tmp_path, KEY)
    assert found.read_text() == BODY


def test_unrenamable_legacy_migrates_by_atomic_copy(tmp_path, monkeypatch):
    # EXDEV-style failure: rename is impossible (cross-device store) but
    # the flat file is intact — migrate by copy, then drop the original.
    legacy = _legacy(tmp_path)
    real_replace = os.replace

    def exdev_replace(src, dst, **kwargs):
        if str(src) == str(legacy):
            raise OSError(errno.EXDEV, "cross-device link", str(src))
        real_replace(src, dst, **kwargs)  # the copy's temp-file publish

    monkeypatch.setattr("repro.exp.cache.os.replace", exdev_replace)
    found = locate_entry(tmp_path, KEY)
    assert found == sharded_entry_path(tmp_path, KEY)
    assert found.read_text() == BODY
    assert not legacy.exists()


def test_totally_stuck_legacy_is_served_in_place(tmp_path, monkeypatch):
    # Even rename AND copy failing must not lose the entry: serve the
    # flat path itself.
    legacy = _legacy(tmp_path)

    def broken_replace(src, dst, **kwargs):
        raise OSError(errno.EACCES, "read-only store", str(src))

    monkeypatch.setattr("repro.exp.cache.os.replace", broken_replace)
    found = locate_entry(tmp_path, KEY)
    assert found == legacy
    assert found.read_text() == BODY


def test_concurrent_migration_never_misses(tmp_path):
    # Hammer several flat keys from many threads at once: every call
    # must come back with a readable path holding the right body, and
    # every key must end up migrated exactly once.
    keys = [f"{i:02x}" + f"{i:064x}"[-62:] for i in range(8)]
    for key in keys:
        _legacy(tmp_path, key=key, body=f'{{"entry": "{key}"}}')

    def touch(key):
        path = locate_entry(tmp_path, key)
        return key, path, path.read_text()

    with ThreadPoolExecutor(max_workers=16) as pool:
        results = list(pool.map(touch, keys * 8))

    for key, path, body in results:
        assert body == f'{{"entry": "{key}"}}'
        assert path.exists()
    for key in keys:
        assert sharded_entry_path(tmp_path, key).exists()
        assert not (tmp_path / f"{key}.json").exists()
