"""Property sweep: the audit invariants hold across 100 randomized
seeded small configurations, including fault-injected runs.

Three families, 100 configs total:

* 40 Algorithm-1 mask programs cycling policy, overlap limit, and
  reshape mode (seeds 0-39);
* 40 device programs with fault/bandwidth churn in both recompute
  modes (seeds 0-39);
* 20 end-to-end mini experiments cycling policy, worker count, and
  batch size, odd seeds under the mixed fault schedule with the chaos
  guard, all audited for the device self-audit and request
  conservation (seeds 0-19).
"""

import pytest

from repro.bench.scenarios import CHAOS_GUARD, chaos_faults
from repro.check import (
    request_conservation,
    run_device_program,
    run_mask_program,
)
from repro.core.allocation import DistributionPolicy
from repro.server.experiment import ExperimentConfig, run_experiment
from repro.server.options import RunOptions

_POLICIES = list(DistributionPolicy)
_LIMITS = (None, 0, 4, 12)
_CELL_POLICIES = ("mps-default", "static-equal", "model-rightsize",
                  "krisp-i", "krisp-o")
_MODELS = ("squeezenet", "shufflenet", "mobilenet")


@pytest.mark.parametrize("seed", range(40))
def test_mask_program_invariants_hold(seed):
    violations = run_mask_program(
        seed=seed,
        iterations=60,
        policy=_POLICIES[seed % len(_POLICIES)],
        overlap_limit=_LIMITS[seed % len(_LIMITS)],
        reshape=bool(seed % 2),
    )
    assert violations == []


@pytest.mark.parametrize("seed", range(40))
def test_device_program_invariants_hold(seed):
    violations = run_device_program(
        seed=seed,
        steps=40,
        full_recompute=bool(seed % 2),
        with_faults=True,
    )
    assert violations == []


def _mini_config(seed: int) -> ExperimentConfig:
    workers = 1 + seed % 3
    return ExperimentConfig(
        model_names=tuple(_MODELS[(seed + i) % len(_MODELS)]
                          for i in range(workers)),
        policy=_CELL_POLICIES[seed % len(_CELL_POLICIES)],
        batch_size=(1, 8)[seed % 2],
        seed=seed,
        requests_scale=0.05,
    )


@pytest.mark.parametrize("seed", range(20))
def test_experiment_invariants_hold(seed):
    config = _mini_config(seed)
    injected = bool(seed % 2)
    observed = []

    def audit(setup, injector):
        assert (injector is not None) == injected
        observed.append(setup.device.audit_state())
        observed.append(request_conservation(setup, injector))

    run_experiment(
        config,
        RunOptions(
            faults=chaos_faults(config) if injected else None,
            guard=CHAOS_GUARD if injected else None,
            audit=audit,
        ),
    )
    assert observed != [] and all(v == [] for v in observed)
