"""Tests for the cluster router's placement policies and FleetClient."""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterRouter,
    ClusterSetup,
    FleetClient,
    run_cluster_experiment,
)
from repro.server.request import InferenceRequest
from repro.workload.arrivals import PoissonArrivals
from repro.workload.spec import HomogeneousWorkloadSpec


def _spec(rate=50.0, batch=4, model="squeezenet"):
    return HomogeneousWorkloadSpec(
        model=model, arrivals=PoissonArrivals(rate), batch_size=batch)


def _started_cluster(**overrides):
    base = dict(devices=2, model_names=("squeezenet",), batch_size=4,
                pool_size=2, pool_min=1)
    base.update(overrides)
    cluster = ClusterSetup.build(ClusterConfig(**base))
    cluster.start(stop_time=1.0, sample_interval=250e-6)
    return cluster


def _request(model="squeezenet", batch=4):
    return InferenceRequest(model_name=model, batch_size=batch,
                            arrival_time=0.0)


def test_unknown_policy_rejected():
    cluster = _started_cluster()
    with pytest.raises(ValueError, match="router policy"):
        ClusterRouter(cluster, policy="round-robin")


def test_ties_break_on_node_then_slot():
    cluster = _started_cluster()
    for policy in ("least-loaded", "free-cu", "affinity"):
        slot = ClusterRouter(cluster, policy=policy).select("squeezenet")
        assert (slot.node_index, slot.slot_index) == (0, 0)


def test_least_loaded_spreads_to_the_empty_slot():
    cluster = _started_cluster()
    router = ClusterRouter(cluster, policy="least-loaded")
    cluster.nodes[0].pools["squeezenet"][0].queue.put(_request())
    assert router.select("squeezenet").node_index == 1


def test_affinity_prefers_the_warm_slot():
    cluster = _started_cluster(devices=1)
    pool = cluster.nodes[0].pools["squeezenet"]
    # Open the cold slot to routing without starting its worker.
    pool[1].active = True
    pool[0].queue.put(_request())
    # Least-loaded chases the empty (cold) slot; affinity stays warm.
    assert ClusterRouter(cluster, "least-loaded") \
        .select("squeezenet").slot_index == 1
    warm = ClusterRouter(cluster, "affinity").select("squeezenet")
    assert warm.slot_index == 0 and warm.worker is not None


def test_unroutable_requests_are_shed_and_counted():
    cluster = _started_cluster()
    router = ClusterRouter(cluster)
    for node in cluster.nodes:
        node.crashed = True
    request = _request()
    assert router.route(request) is False
    assert router.unroutable == 1 and request.shed
    assert router.routed == 0


def test_routing_counts_per_node():
    cluster = _started_cluster()
    router = ClusterRouter(cluster)
    for _ in range(4):
        assert router.route(_request())
    assert router.routed == 4
    assert sum(router.routed_per_node) == 4


def test_fleet_client_rejects_unknown_models():
    cluster = _started_cluster()
    router = ClusterRouter(cluster)
    with pytest.raises(ValueError, match="not in cluster model_names"):
        FleetClient(cluster, router, _spec(model="resnet50"), stop_time=1.0)


def test_arrivals_are_invariant_across_fleet_size_and_policy():
    """The client draws from the cluster RNG fork, so the issued request
    count depends only on the seed and the spec — not on devices or the
    placement policy."""
    results = [
        run_cluster_experiment(
            ClusterConfig(devices=devices, model_names=("squeezenet",),
                          batch_size=4, router=router),
            _spec(), duration=0.5)
        for devices, router in [(1, "least-loaded"), (2, "least-loaded"),
                                (2, "free-cu"), (2, "affinity")]
    ]
    assert len({r.issued for r in results}) == 1
    assert all(r.conservation_ok for r in results)
