"""Tests for the sim-clock tracer: hooks, export, flows, determinism."""

import json

import pytest

from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.server.experiment import ExperimentConfig, run_experiment
from repro.server.options import RunOptions
from repro.sim.engine import Simulator

#: One small, fast co-location cell exercising every hook site.
CELL = ExperimentConfig(("squeezenet",) * 2, policy="krisp-i",
                       batch_size=4, requests_scale=0.1)


def _traced_run(config=CELL):
    tracer = Tracer()
    run_experiment(config, RunOptions(tracer=tracer))
    return tracer


# -- disabled tracing --------------------------------------------------------

def test_simulator_defaults_to_null_tracer():
    assert Simulator().tracer is NULL_TRACER
    assert NULL_TRACER.enabled is False


def test_null_tracer_hooks_are_no_ops():
    null = NullTracer()
    null.bind_clock(lambda: 0.0)
    null.request_arrival(object())
    null.request_dequeued(object(), "w")
    null.request_completed(object(), "w")
    null.kernel_launched(object())
    null.kernel_retired(object())
    null.mask_decision(object(), object(), object())
    null.barrier_injected("s", "B1", "k")
    null.queue_depth("q", 3)
    null.counter_sample("c", 1.0)
    assert not hasattr(null, "records")


def test_untraced_run_matches_traced_run():
    plain = run_experiment(CELL)
    traced = run_experiment(CELL, RunOptions(tracer=Tracer()))
    assert plain.workers == traced.workers
    assert plain.total_rps == traced.total_rps
    assert plain.energy_joules == traced.energy_joules


# -- generic recording / export ---------------------------------------------

def test_span_instant_counter_export_shapes():
    clock = [0.0]
    tracer = Tracer(clock=lambda: clock[0])
    tracer.span("gpu", "w0", "conv", 1e-3, 3e-3, {"cus": 30})
    clock[0] = 2e-3
    tracer.instant("gpu", "cp", "mask-gen", {"granted_cus": 30})
    tracer.counter_sample("occupancy", 30)
    events = tracer.to_chrome_trace()["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    # process_name for gpu + counters, thread_name for w0/cp/occupancy rows.
    assert {m["name"] for m in metas} == {"process_name", "thread_name"}
    span = next(e for e in events if e["ph"] == "X")
    assert span["ts"] == pytest.approx(1e3)  # microseconds
    assert span["dur"] == pytest.approx(2e3)
    assert span["args"] == {"cus": 30}
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["ts"] == pytest.approx(2e3)
    assert instant["s"] == "t"
    counter = next(e for e in events if e["ph"] == "C")
    assert counter["args"] == {"value": 30}


def test_clock_binding_stamps_instants():
    sim = Simulator()
    tracer = sim.attach_tracer(Tracer())
    sim.schedule(5e-3, lambda: tracer.instant("gpu", "t", "tick"))
    sim.run()
    assert tracer.records[-1].ts == pytest.approx(5e-3)


# -- full experiment traces --------------------------------------------------

def test_flow_events_link_requests_to_kernels():
    tracer = _traced_run()
    trace = tracer.to_chrome_trace()
    events = trace["traceEvents"]
    pid_of = {e["args"]["name"]: e["pid"] for e in events
              if e.get("name") == "process_name"}
    assert {"server", "gpu"} <= set(pid_of)

    starts = [e for e in events if e.get("ph") == "s"]
    finishes = [e for e in events if e.get("ph") == "f"]
    assert starts and len(starts) == len(finishes)
    # Every flow id pairs exactly one start with one finish.
    assert {e["id"] for e in starts} == {e["id"] for e in finishes}
    assert all(e["bp"] == "e" for e in finishes)
    # One arrow per traced kernel, every kernel bound to a request.
    assert len(starts) == tracer.kernels_traced

    server_spans = [e for e in events
                    if e.get("ph") == "X" and e["pid"] == pid_of["server"]]
    gpu_spans = [e for e in events
                 if e.get("ph") == "X" and e["pid"] == pid_of["gpu"]]
    assert tracer.requests_traced > 0
    assert len(gpu_spans) == tracer.kernels_traced

    def covered(spans, ev):
        return any(s["tid"] == ev["tid"]
                   and s["ts"] <= ev["ts"] <= s["ts"] + s["dur"]
                   for s in spans)

    # Arrow tails sit inside a request span on the worker's server row;
    # arrow heads sit at a kernel span start on the worker's GPU row.
    assert all(e["pid"] == pid_of["server"] and covered(server_spans, e)
               for e in starts)
    assert all(e["pid"] == pid_of["gpu"] and covered(gpu_spans, e)
               for e in finishes)


def test_mask_decisions_recorded_under_krisp():
    tracer = _traced_run()
    assert tracer.mask_decisions > 0
    decisions = [r for r in tracer.records
                 if r.kind == "instant" and r.name == "mask-gen"]
    assert len(decisions) == tracer.mask_decisions
    args = decisions[0].args
    assert {"kernel", "requested_cus", "granted_cus", "per_se",
            "se_loads", "busy_cus", "short"} <= set(args)
    assert sum(args["per_se"]) == args["granted_cus"]


def test_barriers_recorded_on_emulated_path():
    import dataclasses
    tracer = _traced_run(dataclasses.replace(CELL, emulated=True,
                                             requests_scale=0.05))
    assert tracer.barriers > 0
    kinds = {r.name for r in tracer.records
             if r.kind == "instant" and r.process == "runtime"}
    assert kinds == {"B1", "B2"}


def test_queue_depth_counter_track():
    tracer = _traced_run()
    queue_records = [r for r in tracer.records
                     if r.kind == "counter"
                     and r.name.startswith("queue:")]
    assert queue_records
    assert {r.name for r in queue_records} == {"queue:q0", "queue:q1"}


def test_trace_json_is_deterministic_across_runs(tmp_path):
    paths = []
    for i in range(2):
        tracer = _traced_run()
        path = tmp_path / f"t{i}.json"
        count = tracer.write_chrome_trace(path)
        assert count == len(tracer.to_chrome_trace()["traceEvents"])
        paths.append(path)
    # Same seed, fresh tracers: byte-identical despite the process-global
    # request/launch id counters having advanced between the two runs.
    assert paths[0].read_bytes() == paths[1].read_bytes()
    json.loads(paths[0].read_text())  # and it parses


def test_legacy_trace_export_is_a_wrapper():
    from repro.analysis.trace_export import trace_events
    from repro.obs.tracer import events_from_kernel_records

    sim = Simulator()
    from repro.gpu.cu_mask import CUMask
    from repro.gpu.device import GpuDevice
    from repro.gpu.kernel import KernelDescriptor, KernelLaunch
    from repro.gpu.topology import GpuTopology

    topo = GpuTopology.mi50()
    device = GpuDevice(sim, topo)
    desc = KernelDescriptor(name="k", workgroups=60, occupancy=1,
                            wg_duration=1e-4)
    device.launch(KernelLaunch(desc, tag="w0"), CUMask.all_cus(topo))
    sim.run()
    assert trace_events(device.trace) == \
        events_from_kernel_records(device.trace)
