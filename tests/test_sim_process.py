"""Unit tests for processes and signals."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import Process, Signal


def test_signal_wakes_waiters_with_value():
    sim = Simulator()
    seen = []
    signal = Signal(sim, "s")
    signal.on_fire(seen.append)
    sim.schedule(1.0, lambda: signal.fire(42))
    sim.run()
    assert seen == [42]
    assert signal.fired and signal.value == 42


def test_signal_fires_only_once():
    sim = Simulator()
    seen = []
    signal = Signal(sim)
    signal.on_fire(seen.append)
    signal.fire(1)
    signal.fire(2)
    sim.run()
    assert seen == [1]
    assert signal.value == 1


def test_late_waiter_resumes_immediately():
    sim = Simulator()
    seen = []
    signal = Signal(sim)
    signal.fire("early")
    signal.on_fire(seen.append)
    sim.run()
    assert seen == ["early"]


def test_process_sleeps():
    sim = Simulator()
    times = []

    def body():
        times.append(sim.now)
        yield 1.5
        times.append(sim.now)
        yield 0.5
        times.append(sim.now)

    Process(sim, body())
    sim.run()
    assert times == [0.0, 1.5, 2.0]


def test_process_waits_on_signal_and_receives_value():
    sim = Simulator()
    signal = Signal(sim)
    got = []

    def body():
        value = yield signal
        got.append((sim.now, value))

    Process(sim, body())
    sim.schedule(3.0, lambda: signal.fire("payload"))
    sim.run()
    assert got == [(3.0, "payload")]


def test_process_done_signal_carries_return_value():
    sim = Simulator()

    def body():
        yield 1.0
        return "result"

    proc = Process(sim, body())
    results = []
    proc.done.on_fire(results.append)
    sim.run()
    assert results == ["result"]


def test_processes_compose_via_done():
    sim = Simulator()
    log = []

    def child():
        yield 2.0
        return "child-out"

    def parent():
        proc = Process(sim, child())
        value = yield proc.done
        log.append((sim.now, value))

    Process(sim, parent())
    sim.run()
    assert log == [(2.0, "child-out")]


def test_process_rejects_bad_yield():
    sim = Simulator()

    def body():
        yield "nonsense"

    Process(sim, body(), name="bad")
    with pytest.raises(TypeError):
        sim.run()
