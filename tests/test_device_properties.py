"""Property-based tests for device execution invariants.

Random workloads (kernel shapes, masks, launch times) must preserve the
core conservation laws of the rate-sharing execution model: every kernel
completes, never faster than its isolated latency and never slower than
the fully-time-sliced bound; counters drain to zero; energy is positive
and bounded by peak power times elapsed time.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.exec_model import ExecutionModelConfig, isolated_latency
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.topology import GpuTopology
from repro.sim.engine import Simulator

TOPO = GpuTopology.mi50()
CFG = ExecutionModelConfig(launch_overhead=0.0)

kernel_strategy = st.builds(
    KernelDescriptor,
    name=st.just("k"),
    workgroups=st.integers(min_value=1, max_value=2000),
    threads_per_wg=st.just(256),
    wg_duration=st.floats(min_value=1e-6, max_value=1e-3),
    occupancy=st.integers(min_value=1, max_value=8),
    mem_intensity=st.floats(min_value=0.0, max_value=1.0),
    flat_time=st.floats(min_value=0.0, max_value=1e-3),
)

mask_strategy = st.sets(
    st.integers(min_value=0, max_value=59), min_size=1
).map(lambda cus: CUMask.from_cus(TOPO, cus))

workload_strategy = st.lists(
    st.tuples(kernel_strategy, mask_strategy,
              st.floats(min_value=0.0, max_value=1e-3)),
    min_size=1, max_size=6,
)


@settings(max_examples=40, deadline=None)
@given(workload_strategy)
def test_all_kernels_complete_and_counters_drain(workload):
    sim = Simulator()
    device = GpuDevice(sim, TOPO, exec_config=CFG)
    for desc, mask, delay in workload:
        sim.schedule(delay, lambda d=desc, m=mask: device.launch(
            KernelLaunch(d), m))
    sim.run()
    assert device.kernels_completed == len(workload)
    assert not device.busy()
    assert device.counters.total_assigned() == 0
    assert device.counters.busy_cus() == 0


@settings(max_examples=40, deadline=None)
@given(workload_strategy)
def test_latency_bounds(workload):
    """Each kernel finishes no earlier than its isolated latency and no
    later than serialising everything that overlaps it."""
    sim = Simulator()
    device = GpuDevice(sim, TOPO, exec_config=CFG)
    records: dict[int, object] = {}
    for index, (desc, mask, delay) in enumerate(workload):
        sim.schedule(delay, lambda i=index, d=desc, m=mask: records.__setitem__(
            i, device.launch(KernelLaunch(d), m)))
    sim.run()
    total_work = sum(isolated_latency(d, m, CFG) for d, m, _t in workload)
    for index, (desc, mask, _delay) in enumerate(workload):
        record = records[index]
        elapsed = record.end_time - record.start_time
        floor = isolated_latency(desc, mask, CFG)
        assert elapsed >= floor * (1 - 1e-9)
        # Gross upper bound: even full serialisation with worst-case
        # intra-CU interference cannot exceed total work times the
        # interference factor at max co-residency.
        ceiling = total_work * len(workload) ** CFG.intra_cu_alpha + 1e-9
        assert elapsed <= ceiling


@settings(max_examples=30, deadline=None)
@given(workload_strategy)
def test_energy_bounded_by_peak_power(workload):
    sim = Simulator()
    device = GpuDevice(sim, TOPO, exec_config=CFG)
    for desc, mask, delay in workload:
        sim.schedule(delay, lambda d=desc, m=mask: device.launch(
            KernelLaunch(d), m))
    sim.run()
    device.finalize()
    elapsed = sim.now
    energy = device.meter.energy_joules
    peak = device.power_model.peak_power(TOPO)
    idle = device.power_model.idle_power(TOPO)
    assert energy >= idle * elapsed * (1 - 1e-9)
    assert energy <= peak * elapsed * (1 + 1e-9)


@settings(max_examples=30, deadline=None)
@given(kernel_strategy, mask_strategy)
def test_single_kernel_matches_analytic_model(desc, mask):
    """The device's fast path must agree with the exec_model formulas."""
    sim = Simulator()
    device = GpuDevice(sim, TOPO, exec_config=CFG)
    record = device.launch(KernelLaunch(desc), mask)
    sim.run()
    expected = isolated_latency(desc, mask, CFG)
    assert math.isclose(record.end_time - record.start_time, expected,
                        rel_tol=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.lists(kernel_strategy, min_size=2, max_size=4))
def test_identical_kernels_finish_together(descs):
    """Same kernel, same mask, same start: completions coincide."""
    desc = descs[0]
    sim = Simulator()
    device = GpuDevice(sim, TOPO, exec_config=CFG)
    mask = CUMask.all_cus(TOPO)
    records = [device.launch(KernelLaunch(desc), mask) for _ in descs]
    sim.run()
    ends = {round(r.end_time, 12) for r in records}
    assert len(ends) == 1
