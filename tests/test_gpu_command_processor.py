"""Unit tests for the command processor's packet semantics."""

import pytest

from repro.core.allocation import ResourceMaskGenerator
from repro.core.krisp import KrispAllocator
from repro.gpu.aql import BarrierAndPacket, KernelDispatchPacket
from repro.gpu.command_processor import CommandProcessor, CommandProcessorConfig
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.exec_model import ExecutionModelConfig
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.queue import HsaQueue
from repro.gpu.topology import GpuTopology
from repro.sim.engine import Simulator
from repro.sim.process import Signal

TOPO = GpuTopology.mi50()
CFG = ExecutionModelConfig(launch_overhead=0.0, intra_cu_alpha=1.0)


def make_cp(allocator=None, config=None):
    sim = Simulator()
    device = GpuDevice(sim, TOPO, exec_config=CFG)
    cp = CommandProcessor(sim, device, config=config, allocator=allocator)
    queue = HsaQueue(TOPO, name="q")
    cp.register_queue(queue)
    return sim, device, cp, queue


def kernel_packet(name="k", workgroups=60, barrier=True, requested=None,
                  signal=None):
    launch = KernelLaunch(
        KernelDescriptor(name=name, workgroups=workgroups,
                         wg_duration=1e-4, occupancy=1, mem_intensity=0.0),
        requested_cus=requested,
    )
    return KernelDispatchPacket(launch=launch, barrier=barrier,
                                completion_signal=signal)


def test_barrier_bit_serializes_kernels():
    sim, device, cp, queue = make_cp()
    max_running = []
    orig_launch = device.launch

    def spy(launch, mask, on_complete=None):
        record = orig_launch(launch, mask, on_complete)
        max_running.append(device.running_count())
        return record

    device.launch = spy
    for i in range(3):
        queue.submit(kernel_packet(f"k{i}", barrier=True))
    sim.run()
    assert device.kernels_completed == 3
    assert max(max_running) == 1


def test_no_barrier_bit_allows_same_queue_overlap():
    sim, device, cp, queue = make_cp()
    max_running = []
    orig_launch = device.launch

    def spy(launch, mask, on_complete=None):
        record = orig_launch(launch, mask, on_complete)
        max_running.append(device.running_count())
        return record

    device.launch = spy
    for i in range(3):
        queue.submit(kernel_packet(f"k{i}", barrier=False))
    sim.run()
    assert max(max_running) == 3


def test_barrier_and_packet_waits_for_deps():
    sim, device, cp, queue = make_cp()
    gate = Signal(sim, "gate")
    consumed = []
    done = Signal(sim, "done")
    queue.submit(BarrierAndPacket(
        dep_signals=[gate],
        on_consumed=lambda: consumed.append(sim.now),
        completion_signal=done,
    ))
    queue.submit(kernel_packet("after"))
    sim.schedule(1.0, lambda: gate.fire(None))
    sim.run()
    assert consumed and consumed[0] >= 1.0
    assert done.fired
    assert device.kernels_completed == 1


def test_barrier_with_fired_deps_passes_through():
    sim, device, cp, queue = make_cp()
    gate = Signal(sim, "gate")
    gate.fire(None)
    done = Signal(sim, "done")
    queue.submit(BarrierAndPacket(dep_signals=[gate],
                                  completion_signal=done))
    sim.run()
    assert done.fired


def test_kernel_scoped_allocation_uses_requested_size():
    allocator = KrispAllocator(ResourceMaskGenerator(TOPO))
    sim, device, cp, queue = make_cp(allocator=allocator)
    masks = []
    orig_launch = device.launch
    device.launch = lambda l, m, on_complete=None: (
        masks.append(m.count()) or orig_launch(l, m, on_complete))
    queue.submit(kernel_packet("sized", workgroups=12, requested=12))
    queue.submit(kernel_packet("unsized", workgroups=12, requested=None))
    sim.run()
    assert masks == [12, 60]
    assert cp.masks_generated == 1
    assert allocator.allocations == 1


def test_mask_generation_latency_charged():
    allocator = KrispAllocator(ResourceMaskGenerator(TOPO))
    config = CommandProcessorConfig(packet_process_latency=0.0,
                                    mask_gen_latency=5e-6)
    sim, device, cp, queue = make_cp(allocator=allocator, config=config)
    starts = []
    orig_launch = device.launch
    device.launch = lambda l, m, on_complete=None: (
        starts.append(sim.now) or orig_launch(l, m, on_complete))
    queue.submit(kernel_packet("sized", requested=30))
    sim.run()
    assert starts[0] == pytest.approx(5e-6)


def test_multiple_queues_progress_independently():
    sim = Simulator()
    device = GpuDevice(sim, TOPO, exec_config=CFG)
    cp = CommandProcessor(sim, device)
    q1, q2 = HsaQueue(TOPO, name="q1"), HsaQueue(TOPO, name="q2")
    cp.register_queue(q1)
    cp.register_queue(q2)
    q1.set_cu_mask(CUMask.first_n(TOPO, 30))
    q2.set_cu_mask(CUMask.from_cus(TOPO, range(30, 60)))
    max_running = []
    orig_launch = device.launch
    device.launch = lambda l, m, on_complete=None: (
        max_running.append(device.running_count())
        or orig_launch(l, m, on_complete))
    q1.submit(kernel_packet("a", workgroups=30))
    q2.submit(kernel_packet("b", workgroups=30))
    sim.run()
    assert device.kernels_completed == 2
    assert max(max_running) == 1  # spy records count *before* insert; 2nd sees 1


def test_topology_mismatch_rejected():
    sim = Simulator()
    device = GpuDevice(sim, TOPO, exec_config=CFG)
    cp = CommandProcessor(sim, device)
    with pytest.raises(ValueError):
        cp.register_queue(HsaQueue(GpuTopology.mi100()))


def test_config_validation():
    with pytest.raises(ValueError):
        CommandProcessorConfig(packet_process_latency=-1.0)
