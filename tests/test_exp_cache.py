"""Tests for the content-addressed result cache (repro/exp/cache.py)."""

import dataclasses
import json

import pytest

import repro
from repro.exp.cache import (
    JsonStore,
    ResultCache,
    cache_key,
    cache_root,
    cached_run_experiment,
    config_from_dict,
    config_to_dict,
    fingerprint,
    result_from_dict,
    result_to_dict,
)
from repro.server.experiment import (
    ExperimentConfig,
    ExperimentResult,
    WorkerResult,
)
from repro.server.metrics import LatencyStats

BASE = ExperimentConfig(
    model_names=("squeezenet", "shufflenet"),
    policy="krisp-i",
    batch_size=8,
    seed=3,
    overlap_limit=4,
    requests_scale=0.5,
)

#: One distinct mutation per ExperimentConfig field.
FIELD_VARIANTS = {
    "model_names": ("squeezenet",),
    "policy": "krisp-o",
    "batch_size": 16,
    "seed": 4,
    "emulated": True,
    "overlap_limit": None,
    "requests_scale": 0.75,
    "intra_cu_alpha": 1.3,
    "mem_bandwidth_budget": 0.8,
    "allocator_reshape": False,
    "allocation": "pooled",
    "sizing": "predictive",
}


def _synthetic_result(config: ExperimentConfig) -> ExperimentResult:
    stats = LatencyStats(count=7, mean=0.010, p50=0.009, p95=0.013,
                         p99=0.014, p999=0.0142, maximum=0.0145)
    workers = tuple(
        WorkerResult(model_name=name, requests_completed=7,
                     rps=100.0 + i, latency=stats)
        for i, name in enumerate(config.model_names)
    )
    return ExperimentResult(
        config=config, workers=workers, window=0.5,
        total_rps=sum(w.rps for w in workers), energy_joules=12.5,
        energy_per_request=0.893, gpu_utilization=0.61,
        peak_cu_occupancy=42,
    )


def test_every_config_field_changes_the_key():
    assert set(FIELD_VARIANTS) == {
        f.name for f in dataclasses.fields(ExperimentConfig)
    }, "update FIELD_VARIANTS when ExperimentConfig grows a field"
    keys = {cache_key(BASE)}
    for name, value in FIELD_VARIANTS.items():
        variant = dataclasses.replace(BASE, **{name: value})
        keys.add(cache_key(variant))
    assert len(keys) == len(FIELD_VARIANTS) + 1


def test_repro_version_changes_the_key(monkeypatch):
    before = cache_key(BASE)
    monkeypatch.setattr(repro, "__version__", "0.0.0-test")
    assert cache_key(BASE) != before


def test_explicit_constants_change_the_key():
    constants = dict(fingerprint(), slo_factor=3.0)
    assert cache_key(BASE, constants) != cache_key(BASE)


def test_cache_key_is_stable_across_calls():
    assert cache_key(BASE) == cache_key(BASE)


def test_config_round_trips_through_json():
    payload = json.loads(json.dumps(config_to_dict(BASE)))
    assert config_from_dict(payload) == BASE


def test_result_round_trips_through_json():
    result = _synthetic_result(BASE)
    payload = json.loads(json.dumps(result_to_dict(result)))
    assert result_from_dict(payload) == result


def test_result_cache_round_trip(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = ResultCache()
    assert cache.get(BASE) is None
    assert cache.stats.misses == 1
    result = _synthetic_result(BASE)
    cache.put(BASE, result)
    assert cache.get(BASE) == result
    assert cache.stats.hits == 1
    # A different config misses even with the store populated.
    other = dataclasses.replace(BASE, seed=99)
    assert cache.get(other) is None


@pytest.mark.parametrize("corruption", [
    "",                      # truncated to nothing
    "{not json",             # invalid syntax
    '{"config": {}, "result": {}}',  # config mismatch
    '[1, 2, 3]',             # wrong root type
])
def test_corrupt_result_entries_are_misses(monkeypatch, tmp_path, corruption):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = ResultCache()
    cache.put(BASE, _synthetic_result(BASE))
    cache.path_for(BASE).write_text(corruption)
    assert cache.get(BASE) is None
    assert cache.stats.invalidations == 1
    # The corrupt file was quarantined, so a re-put works cleanly.
    cache.put(BASE, _synthetic_result(BASE))
    assert cache.get(BASE) is not None


def test_cached_run_experiment_recomputes_after_corruption(monkeypatch,
                                                           tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = ResultCache()
    config = ExperimentConfig(("squeezenet",), batch_size=4,
                              requests_scale=0.25)
    first = cached_run_experiment(config, cache)
    cache.path_for(config).write_text("{truncated")
    second = cached_run_experiment(config, cache)
    assert first == second
    assert cache.stats.invalidations == 1


def test_json_store_corruption_is_a_miss(tmp_path):
    store = JsonStore(tmp_path / "store.json")
    assert store.get("k") is None
    store.put("k", 42)
    assert store.get("k") == 42
    (tmp_path / "store.json").write_text("{broken")
    assert store.get("k") is None
    assert store.stats.invalidations >= 1
    # put() over a corrupt file rebuilds it.
    store.put("k", 43)
    assert store.get("k") == 43


def test_cache_root_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert cache_root() == tmp_path
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert cache_root().name == "repro-krisp"


def test_json_store_concurrent_writers_never_corrupt(tmp_path):
    """Regression: writes publish via temp file + ``os.replace``, so a
    reader racing several writers sees only complete payloads — the old
    truncate-then-write path could expose a partially written file."""
    import threading

    path = tmp_path / "store.json"
    # A payload large enough that a non-atomic write is interruptible.
    payloads = {f"writer-{i}": list(range(i, i + 4000)) for i in range(4)}
    JsonStore(path).put("k", payloads["writer-0"])

    stop = threading.Event()
    corrupt: list[str] = []

    def write(tag):
        store = JsonStore(path)
        for _ in range(25):
            store.put("k", payloads[tag])

    def read():
        reader = JsonStore(path)
        while not stop.is_set():
            data = reader.load()
            if reader.stats.invalidations:
                corrupt.append("reader saw a corrupt store file")
                return
            if data.get("k") not in payloads.values():
                corrupt.append(f"reader saw a torn value: {data.get('k')!r}")
                return

    readers = [threading.Thread(target=read) for _ in range(2)]
    writers = [threading.Thread(target=write, args=(tag,))
               for tag in payloads]
    for thread in readers + writers:
        thread.start()
    for thread in writers:
        thread.join()
    stop.set()
    for thread in readers:
        thread.join()

    assert corrupt == []
    # Last write wins with a complete value, and no temp files leak.
    assert JsonStore(path).get("k") in payloads.values()
    assert [p.name for p in tmp_path.iterdir()] == ["store.json"]


# -- shard layout & legacy migration -----------------------------------------

def test_entries_land_in_two_hex_shard_subdirs(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = ResultCache()
    cache.put(BASE, _synthetic_result(BASE))
    key = cache_key(BASE)
    path = cache.path_for(BASE)
    assert path == tmp_path / "results" / key[:2] / f"{key}.json"
    assert path.exists()


def test_flat_legacy_entry_hits_and_migrates_on_read(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = ResultCache()
    result = _synthetic_result(BASE)
    cache.put(BASE, result)
    key = cache_key(BASE)
    sharded = cache.path_for(BASE)
    # Rewind to the pre-sharding layout: flat <results>/<key>.json.
    legacy = tmp_path / "results" / f"{key}.json"
    sharded.rename(legacy)
    sharded.parent.rmdir()

    assert cache.get(BASE) == result          # legacy entry still hits...
    assert sharded.exists()                   # ...and was moved into its shard
    assert not legacy.exists()
    assert cache.stats.hits == 1

    assert cache.get(BASE) == result          # steady state: sharded read
    assert cache.stats.hits == 2


def test_locate_entry_misses_resolve_to_sharded_path(tmp_path):
    from repro.exp.cache import locate_entry, sharded_entry_path

    key = "ab" + "0" * 62
    assert locate_entry(tmp_path, key) == sharded_entry_path(tmp_path, key)
    assert locate_entry(tmp_path, key) == tmp_path / "ab" / f"{key}.json"
