"""Tests for ClusterSetup wiring, slot lifecycle, and determinism."""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSetup,
    cluster_result_hash,
    run_cluster_experiment,
)
from repro.cluster.experiment import ClusterResult
from repro.workload.arrivals import PoissonArrivals
from repro.workload.spec import HomogeneousWorkloadSpec


def _config(**overrides):
    base = dict(devices=2, model_names=("squeezenet",), batch_size=4,
                pool_size=2, pool_min=1)
    base.update(overrides)
    return ClusterConfig(**base)


def _spec(rate=50.0, batch=4):
    # rate is batches/s, so offered_rps = rate * batch.
    return HomogeneousWorkloadSpec(
        model="squeezenet", arrivals=PoissonArrivals(rate), batch_size=batch)


def test_build_wires_nodes_and_slots_in_order():
    config = _config(devices=3)
    cluster = ClusterSetup.build(config)
    assert [node.index for node in cluster.nodes] == [0, 1, 2]
    # All nodes share one simulator but own distinct serving cells.
    assert len({id(node.setup) for node in cluster.nodes}) == 3
    assert len({id(node.setup.device) for node in cluster.nodes}) == 3
    assert all(node.setup.sim is cluster.sim for node in cluster.nodes)
    for node in cluster.nodes:
        assert list(node.pools) == list(config.model_names)
        for mi, model in enumerate(config.model_names):
            for s, slot in enumerate(node.pools[model]):
                assert slot.slot_index == s
                assert slot.plan_index == mi * config.pool_size + s
                assert slot.queue.name == f"n{node.index}:{model}:{s}"
                assert slot.kernel_count > 0
                assert slot.worker is None and not slot.active


def test_start_activates_pool_min_immediately():
    config = _config()
    cluster = ClusterSetup.build(config)
    cluster.start(stop_time=1.0, sample_interval=250e-6)
    for node in cluster.nodes:
        pool = node.pools["squeezenet"]
        assert node.active_count("squeezenet") == config.pool_min
        # t=0 activation is free: workers exist with no pending reload.
        for slot in pool[:config.pool_min]:
            assert slot.active and slot.worker is not None
            assert not slot.pending_start
        for slot in pool[config.pool_min:]:
            assert not slot.active and slot.worker is None
    assert len(cluster.samplers) == config.devices


def test_mid_run_activation_pays_cold_start():
    cluster = ClusterSetup.build(_config(devices=1))
    cluster.start(stop_time=1.0, sample_interval=250e-6)
    cluster.sim.run(until=0.01)
    slot = cluster.nodes[0].pools["squeezenet"][1]
    cluster.activate_slot(slot)
    assert slot.active and slot.pending_start and slot.worker is None
    reload_time = cluster.reload.reload_time(slot.kernel_count)
    cluster.sim.run(until=0.01 + reload_time + 1e-6)
    assert slot.worker is not None and not slot.pending_start
    # Deactivation only closes routing; the worker stays resident.
    cluster.deactivate_slot(slot)
    assert not slot.active and slot.worker is not None


def test_config_validation():
    with pytest.raises(ValueError, match="distinct"):
        _config(model_names=("squeezenet", "squeezenet"))
    with pytest.raises(ValueError, match="pool_min"):
        _config(pool_min=3, pool_size=2)
    with pytest.raises(ValueError, match="router policy"):
        _config(router="round-robin")
    with pytest.raises(ValueError, match="at least one device"):
        _config(devices=0)


def test_config_roundtrips_through_dict():
    config = _config(devices=4, router="affinity", pool_size=3)
    assert ClusterConfig.from_dict(config.to_dict()) == config
    node = config.node_config()
    assert node.model_names == ("squeezenet",) * 3
    assert node.batch_size == config.batch_size


def test_cluster_run_is_bit_identical_across_repeats():
    config = _config()
    first = run_cluster_experiment(config, _spec(), duration=0.5)
    second = run_cluster_experiment(config, _spec(), duration=0.5)
    assert cluster_result_hash(first) == cluster_result_hash(second)
    assert first.conservation_ok
    assert first.completed > 0


def test_cluster_result_roundtrips_through_dict():
    result = run_cluster_experiment(_config(), _spec(), duration=0.5)
    clone = ClusterResult.from_dict(result.to_dict())
    assert cluster_result_hash(clone) == cluster_result_hash(result)
