"""Co-location study: four workers of one model under every policy.

Reproduces one column of the paper's Fig. 13 interactively: runs 4
concurrent workers of a chosen model under each spatial-partitioning
policy at maximum load and prints normalized throughput, p95 latency
versus the 2x SLO, and energy per inference.

Run:  python examples/colocation_study.py [model] [workers]
      e.g. python examples/colocation_study.py resnet152 4
"""

import sys

from repro.analysis.tables import format_table
from repro.models.zoo import MODEL_NAMES
from repro.server.experiment import (
    ExperimentConfig,
    isolated_baseline,
    normalized_rps,
    run_experiment,
    slo_target,
)
from repro.server.policies import POLICY_NAMES


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "resnet152"
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    if model not in MODEL_NAMES:
        raise SystemExit(f"unknown model {model!r}; pick from {MODEL_NAMES}")

    base = isolated_baseline(model)
    slo = slo_target(model)
    print(f"{model} isolated: {base.total_rps:.0f} rps, "
          f"p95 {base.max_p95() * 1e3:.1f} ms, "
          f"{base.energy_per_request:.2f} J/request "
          f"(SLO: p95 <= {slo * 1e3:.1f} ms)\n")

    rows = []
    for policy in POLICY_NAMES:
        result = run_experiment(ExperimentConfig(
            model_names=(model,) * workers, policy=policy))
        rows.append([
            policy,
            normalized_rps(result),
            result.max_p95() * 1e3,
            result.meets_slo(),
            result.energy_per_request / base.energy_per_request,
            result.gpu_utilization,
        ])
    print(format_table(
        ["policy", "norm rps", "p95 (ms)", "meets SLO", "E/req vs iso",
         "util"],
        rows,
        title=f"{workers} co-located {model} workers (batch 32, max load)",
    ))


if __name__ == "__main__":
    main()
