"""Quickstart: run one inference model through a KRISP-enabled GPU stack.

Builds the simulated MI50, profiles a model's kernels into a performance
database (offline, as at library install time), wires a KRISP system with
kernel-scoped partition instances, and runs a few inference passes while
reporting per-kernel partition sizes and end-to-end latency.

Run:  python examples/quickstart.py
"""

from repro.core.krisp import KrispConfig, KrispSystem
from repro.gpu.device import GpuDevice
from repro.models.zoo import get_model
from repro.profiling.kernel_profiler import build_database
from repro.sim.engine import Simulator


def main() -> None:
    model = get_model("albert")
    batch_size = 32

    # Offline: profile every kernel's minimum-CU requirement.
    database = build_database(model.trace(batch_size))
    print(f"profiled {len(database)} distinct kernels of {model.name}")

    # Online: a device with a KRISP runtime (kernel-wise right-sizing in
    # the runtime + kernel-scoped partition instances in the packet
    # processor).
    sim = Simulator()
    device = GpuDevice(sim, record_trace=True)
    system = KrispSystem(sim, device, database,
                         config=KrispConfig(overlap_limit=0))
    stream = system.create_stream("quickstart")

    passes = 3
    for _ in range(passes):
        for descriptor in model.trace(batch_size):
            stream.launch_kernel(descriptor)
    sim.run()
    device.finalize()

    latency = sim.now / passes
    print(f"\nran {passes} inference passes of {model.name} "
          f"(batch {batch_size})")
    print(f"  kernels executed : {device.kernels_completed}")
    print(f"  mean pass latency: {latency * 1e3:.2f} ms "
          f"(paper Table III: {model.paper_p95_ms:.0f} ms)")
    print(f"  energy           : {device.meter.energy_joules:.1f} J")

    sizes = [record.mask.count() for record in device.trace]
    small = sum(1 for s in sizes if s <= 15)
    print(f"  partition sizes  : min={min(sizes)} max={max(sizes)} "
          f"({small}/{len(sizes)} kernels ran on <=15 CUs)")
    print("\nKernel-wise right-sizing left most of the GPU free for "
          "co-located models - see examples/colocation_study.py")


if __name__ == "__main__":
    main()
