"""The paper's Fig. 1 motivation, measured: where does the GPU idle?

Runs the same co-located pair of models three ways and reconstructs the
CU-utilization timeline from the device trace:

1. temporal sharing (one model at a time, the Fig. 1-left baseline);
2. model-wise right-sizing (each worker masked to its kneepoint,
   Fig. 1-center) — allocated CUs shrink, but kernels inside each
   partition still over-allocate;
3. kernel-wise right-sizing (KRISP, Fig. 1-right) — allocation follows
   each kernel's actual requirement.

Run:  python examples/utilization_motivation.py
"""

from repro.analysis.tables import format_table
from repro.analysis.utilization import utilization_timeline
from repro.core.krisp import KrispConfig, KrispSystem
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.topology import GpuTopology
from repro.models.zoo import get_model
from repro.profiling.kernel_profiler import build_database
from repro.runtime.hsa import HsaRuntime
from repro.runtime.stream import Stream
from repro.server.profiles import model_right_size
from repro.sim.engine import Simulator

MODELS = ("albert", "squeezenet")
TOPO = GpuTopology.mi50()


def run_temporal():
    """One model at a time on the whole GPU (Fig. 1 left)."""
    sim = Simulator()
    device = GpuDevice(sim, record_trace=True)
    runtime = HsaRuntime(sim, device)
    stream = Stream(runtime)
    for name in MODELS:
        for desc in get_model(name).trace(32):
            stream.launch_kernel(desc)
    sim.run()
    return device, sim.now


def run_model_rightsize():
    """Concurrent workers masked to their kneepoints (Fig. 1 center)."""
    sim = Simulator()
    device = GpuDevice(sim, record_trace=True)
    runtime = HsaRuntime(sim, device)
    offset = 0
    for name in MODELS:
        stream = Stream(runtime, name=name)
        size = model_right_size(name, 32)
        stream.queue.set_cu_mask(CUMask.from_cus(
            TOPO, range(offset, offset + size)))
        offset += size
        for desc in get_model(name).trace(32):
            stream.launch_kernel(desc)
    sim.run()
    return device, sim.now


def run_krisp():
    """Kernel-scoped partitions (Fig. 1 right)."""
    sim = Simulator()
    device = GpuDevice(sim, record_trace=True)
    database = build_database(
        [d for name in MODELS for d in get_model(name).trace(32)])
    system = KrispSystem(sim, device, database,
                         config=KrispConfig(overlap_limit=0))
    for name in MODELS:
        stream = system.create_stream(name)
        for desc in get_model(name).trace(32):
            stream.launch_kernel(desc)
    sim.run()
    return device, sim.now


def main() -> None:
    rows = []
    for label, runner in (("temporal sharing", run_temporal),
                          ("model-wise right-size", run_model_rightsize),
                          ("kernel-wise (KRISP)", run_krisp)):
        device, makespan = runner()
        timeline = utilization_timeline(device.trace, TOPO, end=makespan)
        rows.append([
            label,
            makespan * 1e3,
            timeline.mean_allocated(),
            timeline.mean_occupied(),
            timeline.over_allocation() * 100,
        ])
    print(format_table(
        ["strategy", "makespan (ms)", "mean CUs allocated",
         "mean CUs occupied", "allocated-but-idle %"],
        rows,
        title=f"co-locating {' + '.join(MODELS)} (batch 32, one pass each)",
    ))
    print("\nKernel-wise right-sizing shrinks allocation to what kernels "
          "actually occupy,\nfreeing the rest of the GPU for more "
          "concurrent models.")


if __name__ == "__main__":
    main()
