"""Open-loop serving: find the max sustainable rate under the SLO.

Goes beyond the paper's max-load evaluation: drives a co-located
deployment with Poisson arrivals at increasing rates, shows the
queueing-inclusive latency curve, and binary-searches the highest rate
whose p95 still meets the 2x-isolated SLO — for both Static Equal and
KRISP-I, showing how much extra SLO-safe load kernel-wise right-sizing
buys.

Run:  python examples/rate_serving.py [model]
"""

import sys

from repro.analysis.tables import format_table
from repro.server.experiment import ExperimentConfig, isolated_baseline, slo_target
from repro.server.rate_experiment import max_sustainable_rate, run_rate_experiment


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "squeezenet"
    workers = 4
    base = isolated_baseline(model)
    slo = slo_target(model)
    print(f"{model}: isolated {base.total_rps:.0f} rps; "
          f"SLO p95 <= {slo * 1e3:.1f} ms\n")

    rows = []
    for factor in (0.5, 1.0, 2.0, 3.0):
        config = ExperimentConfig(model_names=(model,) * workers,
                                  policy="krisp-i")
        result = run_rate_experiment(config,
                                     offered_rps=factor * base.total_rps,
                                     duration=1.0)
        rows.append([f"{factor:.1f}x isolated", result.achieved_rps,
                     result.latency.p95 * 1e3, result.saturated])
    print(format_table(
        ["offered load", "achieved rps", "p95 incl. queueing (ms)",
         "saturated"],
        rows, title=f"KRISP-I, {workers} workers, Poisson arrivals"))

    print("\nmax sustainable rate under the SLO:")
    for policy in ("static-equal", "krisp-i"):
        config = ExperimentConfig(model_names=(model,) * workers,
                                  policy=policy)
        best = max_sustainable_rate(config, slo,
                                    low_rps=0.5 * base.total_rps,
                                    high_rps=4.0 * base.total_rps,
                                    iterations=5)
        print(f"  {policy:14s}: {best:.0f} rps "
              f"({best / base.total_rps:.2f}x isolated)")


if __name__ == "__main__":
    main()
