"""Emulation methodology walkthrough (paper Section V and Fig. 12).

KRISP is evaluated on stock hardware by *emulating* kernel-scoped
partition instances with barrier packets and per-kernel IOCTL mask
reconfiguration.  The bracket costs time, which the paper removes
analytically:

    L_over        = L_emu(baseline) - L_real(baseline)
    L_real(KRISP) = L_emu(KRISP)    - L_over

This example measures all four quantities on the simulator — where the
"native KRISP" number can also be measured directly — and shows the
correction recovers it.

Run:  python examples/emulation_overhead.py
"""

from repro.core.krisp import KrispConfig, KrispSystem
from repro.gpu.device import GpuDevice
from repro.models.zoo import get_model
from repro.profiling.kernel_profiler import build_database
from repro.runtime.emulation import (
    FullGpuAllocator,
    EmulatedKernelScopedStream,
    corrected_latency,
    emulation_overhead,
)
from repro.runtime.hsa import HsaRuntime
from repro.runtime.stream import Stream
from repro.sim.engine import Simulator


def run_pass(make_stream, passes=3):
    """Average latency of an inference pass on a fresh stack."""
    sim = Simulator()
    device = GpuDevice(sim)
    stream = make_stream(sim, device)
    trace = get_model("albert").trace(32)
    for _ in range(passes):
        for desc in trace:
            stream.launch_kernel(desc)
    sim.run()
    return sim.now / passes


def main() -> None:
    model = get_model("albert")
    database = build_database(model.trace(32))

    def native_baseline(sim, device):
        return Stream(HsaRuntime(sim, device), name="base")

    def emulated_baseline(sim, device):
        # Emulation bracket with the mask forced to all CUs.
        return EmulatedKernelScopedStream(
            HsaRuntime(sim, device), allocator=FullGpuAllocator(),
            name="emu-base")

    def emulated_krisp(sim, device):
        system = KrispSystem(sim, device, database,
                             config=KrispConfig(overlap_limit=0))
        return system.create_stream("emu-krisp", emulated=True)

    def native_krisp(sim, device):
        system = KrispSystem(sim, device, database,
                             config=KrispConfig(overlap_limit=0))
        return system.create_stream("krisp")

    l_real_base = run_pass(native_baseline)
    l_emu_base = run_pass(emulated_baseline)
    l_emu_krisp = run_pass(emulated_krisp)
    l_native_krisp = run_pass(native_krisp)

    l_over = emulation_overhead(l_emu_base, l_real_base)
    l_corrected = corrected_latency(l_emu_krisp, l_over)

    ms = 1e3
    print(f"model: {model.name} ({model.kernel_count} kernels/pass)\n")
    print(f"L_real(baseline)      = {l_real_base * ms:8.3f} ms")
    print(f"L_emu (baseline)      = {l_emu_base * ms:8.3f} ms")
    print(f"L_over                = {l_over * ms:8.3f} ms "
          f"({l_over / model.kernel_count * 1e6:.1f} us per kernel)")
    print(f"L_emu (KRISP)         = {l_emu_krisp * ms:8.3f} ms")
    print(f"L_real(KRISP) est.    = {l_corrected * ms:8.3f} ms "
          "(paper's correction)")
    print(f"L_real(KRISP) direct  = {l_native_krisp * ms:8.3f} ms "
          "(native hardware, measurable only in simulation)")
    error = abs(l_corrected - l_native_krisp) / l_native_krisp
    print(f"\ncorrection error vs direct native measurement: "
          f"{error * 100:.1f}%")


if __name__ == "__main__":
    main()
