"""Profile a custom model and visualise its kernel-wise right-sizing.

Shows the full offline workflow a user of this library follows for a
model that is not in the zoo:

1. describe the model as kernel templates (here: a small custom CNN);
2. profile every kernel's minimum-CU requirement into a performance
   database (persisted to JSON, like MIOpen's perf DB);
3. inspect the per-kernel minCU trace (the paper's Fig. 4 view) and the
   model-level sensitivity curve (the Fig. 3 view).

Run:  python examples/profile_custom_model.py
"""

import tempfile
from pathlib import Path

from repro.analysis.series import ascii_curve
from repro.core.perfdb import PerfDatabase
from repro.models.kernels import compute_kernel, full_gpu_kernel, streaming_kernel
from repro.models.zoo import KernelSpec, ModelSpec
from repro.profiling.kernel_profiler import KernelProfiler, build_database
from repro.profiling.model_profiler import kernel_mincu_trace, profile_model


def tiny_cnn() -> ModelSpec:
    """A 3-conv-block CNN described directly as kernel templates."""
    us = 1e-6
    specs = []
    for block, (min_cus, conv_us) in enumerate([(60, 800), (30, 400), (16, 200)]):
        style = "full" if min_cus == 60 else "compute"
        specs += [
            KernelSpec(style, f"conv{block}", conv_us * us, min_cus=min_cus,
                       flat=0.5),
            KernelSpec("stream", "batchnorm", 20 * us, min_cus=8),
            KernelSpec("stream", "relu", 10 * us, min_cus=4),
            KernelSpec("stream", "maxpool", 15 * us, min_cus=8),
        ]
    specs.append(KernelSpec("compute", "classifier", 60 * us, min_cus=12))
    return ModelSpec(name="tiny-cnn", specs=tuple(specs))


def main() -> None:
    model = tiny_cnn()
    trace = model.trace(batch_size=32)

    profiler = KernelProfiler()
    database = build_database(trace, profiler)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "tiny-cnn-perfdb.json"
        database.save(path)
        reloaded = PerfDatabase.load(path)
    print(f"profiled {len(reloaded)} kernels "
          f"(database round-trips through JSON)\n")

    print("per-kernel minimum required CUs over one inference pass "
          "(the Fig. 4 view):")
    mins = kernel_mincu_trace(model)
    print("  " + " ".join(f"{m:2d}" for m in mins) + "\n")

    sensitivity = profile_model(model, cu_counts=range(4, 61, 4))
    print(ascii_curve(
        sensitivity.cu_counts,
        [lat * 1e3 for lat in sensitivity.latencies],
        width=40,
        label="inference latency (ms) vs active CUs (the Fig. 3 view):",
    ))
    print(f"\nmodel-wise right-size (kneepoint): "
          f"{sensitivity.right_size} CUs")
    print("kernel-wise right-sizing instead gives each kernel only what "
          "it needs - compare the trace above.")


if __name__ == "__main__":
    main()
